// Streaming session layer: windowing edge cases, per-session outputs
// bit-identical to an offline app::MBioTracker / dsp::reference run over
// the same samples, ordered delivery, worker-count invariance, and
// backpressure drop accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "app/mbiotracker.hpp"
#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "dsp/reference.hpp"
#include "dsp/signal.hpp"
#include "stream/completer.hpp"
#include "stream/server.hpp"

namespace vwr2a::stream {
namespace {

/// A reproducible synthetic respiration stream in 16.15.
std::vector<std::int32_t> make_stream(std::size_t n, double breath_hz,
                                      unsigned seed) {
  dsp::RespirationParams p;
  p.breath_hz = breath_hz;
  Rng rng(seed);
  return dsp::respiration_q16_15(static_cast<unsigned>(n), p, rng);
}

/// The windows the stream layer must emit for `samples`: full windows every
/// `hop` samples, then the zero-padded tail (when flushed).
std::vector<std::vector<std::int32_t>> slice_windows(
    const std::vector<std::int32_t>& samples, unsigned window, unsigned hop,
    bool flush_tail) {
  std::vector<std::vector<std::int32_t>> out;
  std::size_t start = 0;
  while (start + window <= samples.size()) {
    out.emplace_back(samples.begin() + start, samples.begin() + start + window);
    start += hop;
  }
  if (flush_tail && start < samples.size()) {
    std::vector<std::int32_t> tail(samples.begin() + start, samples.end());
    tail.resize(window, 0);
    out.push_back(std::move(tail));
  }
  return out;
}

/// Offline golden for one BioTrackerJob window: a fresh platform + app,
/// exactly Device::run_bio's output word format.
std::vector<std::int32_t> offline_bio(const std::vector<std::int32_t>& wq) {
  soc::Platform plat;
  app::MBioTracker tracker(plat);
  tracker.init();
  std::vector<double> x(app::kWindow);
  for (unsigned i = 0; i < app::kWindow; ++i) x[i] = fx::from_q16_15(wq[i]);
  const app::AppResult a = tracker.run(app::Target::kCpuVwr2a, x);
  std::vector<std::int32_t> out;
  out.push_back(a.svm_class);
  out.push_back(static_cast<std::int32_t>(a.extrema));
  for (double f : a.feat.as_vector()) out.push_back(fx::to_q16_15(f));
  return out;
}

/// Offline golden for one PipelineJob window.
std::vector<std::int32_t> offline_pipeline(
    const std::vector<std::int32_t>& wq,
    const std::vector<std::int32_t>& taps) {
  const auto filt = dsp::fir_fx(wq, taps);
  std::vector<std::int32_t> out;
  out.push_back(dsp::energy_fx(filt));
  for (const dsp::CplxFx& b : dsp::rfft_fx(filt)) {
    out.push_back(b.re);
    out.push_back(b.im);
  }
  return out;
}

TEST(Windower, SlicesOverlappingWindowsAndTail) {
  Windower w(8, 4, 32);  // window 8, hop 4
  std::vector<std::int32_t> stream(19);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    stream[i] = static_cast<std::int32_t>(i + 1);
  }
  // Push in awkward chunks: 5, 7, 7.
  w.push(std::span<const std::int32_t>(stream).subspan(0, 5));
  EXPECT_FALSE(w.has_window());
  w.push(std::span<const std::int32_t>(stream).subspan(5, 7));
  ASSERT_TRUE(w.has_window());
  w.push(std::span<const std::int32_t>(stream).subspan(12, 7));

  const auto want = slice_windows(stream, 8, 4, /*flush_tail=*/true);
  ASSERT_EQ(want.size(), 4u);  // starts 0, 4, 8, then tail at 12
  std::vector<std::vector<std::int32_t>> got;
  while (w.has_window()) got.push_back(w.pop_window());
  ASSERT_TRUE(w.has_tail());  // samples 16..18 were never covered
  got.push_back(w.pop_tail());
  EXPECT_EQ(got, want);
  EXPECT_FALSE(w.has_tail());
  EXPECT_EQ(w.size(), 0u);
}

TEST(Windower, NoTailWhenHopLeftoversOnlyOverlap) {
  Windower w(8, 4, 32);
  std::vector<std::int32_t> stream(12);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    stream[i] = static_cast<std::int32_t>(i);
  }
  w.push(stream);
  (void)w.pop_window();  // covers 0..7
  (void)w.pop_window();  // covers 4..11: everything is covered now
  EXPECT_EQ(w.size(), 4u);  // samples 8..11 buffered, but already emitted
  EXPECT_FALSE(w.has_tail());
}

TEST(Windower, SamplesAfterMidStreamFlushAreNotLost) {
  // A tail flush empties the ring; with hop < window the next segment must
  // NOT inherit the old window-hop overlap credit, or small late pushes
  // would never flush.
  Windower w(8, 4, 32);
  std::vector<std::int32_t> first(10, 1);
  w.push(first);
  (void)w.pop_window();        // covers 0..7
  ASSERT_TRUE(w.has_tail());   // samples 8..9
  (void)w.pop_tail();
  std::vector<std::int32_t> late(3, 2);  // fewer than window - hop samples
  w.push(late);
  ASSERT_TRUE(w.has_tail());   // nothing ever covered these
  const auto tail = w.pop_tail();
  const std::vector<std::int32_t> want = {2, 2, 2, 0, 0, 0, 0, 0};
  EXPECT_EQ(tail, want);
}

TEST(Windower, OverlappingViewsAliasOneSegment) {
  // The double-copy fix: with hop < window, consecutive windows are views
  // into ONE shared staging segment -- same allocation, offsets hop apart --
  // so the overlap region is staged once per segment, not once per window.
  Windower w(8, 4, 64);
  std::vector<std::int32_t> stream(24);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    stream[i] = static_cast<std::int32_t>(100 + i);
  }
  w.push(stream);
  const WindowView v0 = w.pop_window_view();
  const WindowView v1 = w.pop_window_view();
  const WindowView v2 = w.pop_window_view();
  EXPECT_EQ(v0.segment.get(), v1.segment.get());
  EXPECT_EQ(v1.segment.get(), v2.segment.get());
  EXPECT_EQ(v1.offset, v0.offset + 4);
  EXPECT_EQ(v2.offset, v1.offset + 4);
  EXPECT_EQ(w.segments_staged(), 1u);
  // Views match the offline slicing bit for bit.
  const auto want = slice_windows(stream, 8, 4, /*flush_tail=*/false);
  EXPECT_EQ(v0.to_vector(8), want[0]);
  EXPECT_EQ(v1.to_vector(8), want[1]);
  EXPECT_EQ(v2.to_vector(8), want[2]);
}

TEST(Windower, SegmentRolloverRestagesLiveRegionOnce) {
  // Capacity 16, window 8, hop 4: after a few pops the fill index reaches
  // the end and the next push must start a new segment, carrying only the
  // live (unconsumed) region over. Emitted views keep the old segment
  // alive and unchanged.
  Windower w(8, 4, 16);
  std::vector<std::int32_t> stream(40);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    stream[i] = static_cast<std::int32_t>(i);
  }
  const auto want = slice_windows(stream, 8, 4, /*flush_tail=*/false);
  std::vector<WindowView> views;
  std::size_t off = 0;
  while (off < stream.size()) {
    const std::size_t take =
        std::min<std::size_t>(w.free_space(), stream.size() - off);
    w.push(std::span<const std::int32_t>(stream).subspan(off, take));
    off += take;
    while (w.has_window()) views.push_back(w.pop_window_view());
  }
  EXPECT_GT(w.segments_staged(), 1u);
  ASSERT_GE(views.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(views[i].to_vector(8), want[i]) << "window " << i;
  }
}

TEST(StreamSession, OffsetJobsMatchExactBufferJobs) {
  // A PipelineJob reading at an offset of a larger shared segment must be
  // indistinguishable from the same window in its own exact-size buffer.
  Rng rng(606);
  std::vector<std::int32_t> big(1024 + 512);
  for (auto& v : big) v = fx::to_q16_15(rng.next_range(-0.4, 0.4));
  const auto taps = runtime::make_buffer(dsp::fir11_lowpass_q15());
  const unsigned off = 256;
  const auto seg = runtime::make_buffer(big);
  const auto exact = runtime::make_buffer(std::vector<std::int32_t>(
      big.begin() + off, big.begin() + off + 512));

  runtime::DevicePool pool;
  auto a = pool.submit({runtime::PipelineJob{512, taps, seg, off}, "view"}).get();
  auto b = pool.submit({runtime::PipelineJob{512, taps, exact, 0}, "copy"}).get();
  EXPECT_EQ(a.output, b.output);

  std::vector<std::int32_t> win(big.begin() + off,
                                big.begin() + off + app::kWindow);
  auto c = pool.submit({runtime::BioTrackerJob{app::Target::kCpuVwr2a, seg, off},
                        "bview"}).get();
  auto d = pool.submit({runtime::BioTrackerJob{app::Target::kCpuVwr2a,
                                               runtime::make_buffer(win), 0},
                        "bcopy"}).get();
  EXPECT_EQ(c.output, d.output);

  // Undersized views are rejected, not misread.
  EXPECT_THROW(
      pool.submit({runtime::PipelineJob{512, taps, exact, 256}, ""}).get(),
      HostError);
}

TEST(Windower, RejectsBadGeometry) {
  EXPECT_THROW(Windower(0, 1, 8), HostError);
  EXPECT_THROW(Windower(8, 0, 8), HostError);
  EXPECT_THROW(Windower(8, 9, 32), HostError);   // hop > window
  EXPECT_THROW(Windower(8, 4, 4), HostError);    // capacity < window
  Windower w(8, 8, 8);
  std::vector<std::int32_t> nine(9, 0);
  EXPECT_THROW(w.push(nine), HostError);
}

TEST(StreamSession, BioOutputsBitIdenticalToOfflineRun) {
  // One tenant on a 2-device server; the stream arrives in awkward chunk
  // sizes. Every delivered window must match an offline MBioTracker run on
  // the identical sample slice, in order.
  const auto samples = make_stream(3 * app::kWindow + 137, 0.25, 901);
  StreamServer::Config scfg;
  scfg.pool.devices = 2;
  StreamServer server(scfg);

  std::vector<WindowResult> delivered;
  Session& s = server.open_session(
      SessionConfig{}, [&](const WindowResult& r) { delivered.push_back(r); });

  std::size_t off = 0;
  unsigned chunk = 61;
  while (off < samples.size()) {
    const std::size_t take = std::min<std::size_t>(chunk, samples.size() - off);
    s.push(std::span<const std::int32_t>(samples).subspan(off, take));
    off += take;
    chunk = 37 + (chunk * 7) % 211;  // deterministic odd sizes
  }
  server.finish();

  const auto want =
      slice_windows(samples, app::kWindow, app::kWindow, /*flush_tail=*/true);
  ASSERT_EQ(delivered.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE("window " + std::to_string(i));
    EXPECT_EQ(delivered[i].index, i);  // ordered delivery
    EXPECT_EQ(delivered[i].job.output, offline_bio(want[i]));
  }
  const SessionStats st = s.stats();
  EXPECT_EQ(st.samples_in, samples.size());
  EXPECT_EQ(st.dropped_samples, 0u);
  EXPECT_EQ(st.windows_submitted, want.size());
  EXPECT_EQ(st.windows_delivered, want.size());
  EXPECT_GT(st.latency_cycles_max, 0u);
}

TEST(StreamSession, OverlappingWindowsMatchOfflineSlicing) {
  // hop < window: 50%-overlapped pipeline windows against the dsp golden.
  const unsigned kWin = 512, kHop = 256;
  const auto samples = make_stream(5 * kHop + 100, 0.4, 902);
  const auto taps = dsp::fir11_lowpass_q15();

  StreamServer server;
  SessionConfig cfg;
  cfg.kind = SessionKind::kPipeline;
  cfg.window = kWin;
  cfg.hop = kHop;
  std::vector<WindowResult> delivered;
  Session& s = server.open_session(
      cfg, [&](const WindowResult& r) { delivered.push_back(r); });
  s.push(samples);
  server.finish();

  const auto want = slice_windows(samples, kWin, kHop, /*flush_tail=*/true);
  ASSERT_EQ(delivered.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE("window " + std::to_string(i));
    EXPECT_EQ(delivered[i].index, i);
    EXPECT_EQ(delivered[i].job.output, offline_pipeline(want[i], taps));
  }
}

TEST(StreamServer, MultiTenantOrderedAndBitIdentical) {
  // 8 tenants (bio and pipeline mixed) on a 4-device heterogeneous fleet,
  // fed round-robin from one thread: per-session delivery must stay
  // ordered and every window must match its offline golden.
  constexpr unsigned kSessions = 8;
  const auto taps = dsp::fir11_lowpass_q15();

  StreamServer::Config scfg;
  scfg.pool.devices = 4;
  scfg.pool.device_arch = {soc::ArchConfig{},
                           soc::ArchConfig{.vwr_count = 2},
                           soc::ArchConfig{.vwr_count = 4},
                           soc::ArchConfig{.simd_width = 16}};
  StreamServer server(scfg);

  std::vector<std::vector<std::int32_t>> streams;
  std::map<std::uint64_t, std::vector<WindowResult>> delivered;
  std::vector<Session*> sessions;
  for (unsigned i = 0; i < kSessions; ++i) {
    streams.push_back(
        make_stream(2 * app::kWindow + 31 * i, 0.15 + 0.06 * i, 910 + i));
    SessionConfig cfg;
    if (i % 2 == 1) cfg.kind = SessionKind::kPipeline;
    sessions.push_back(&server.open_session(
        cfg, [&](const WindowResult& r) { delivered[r.session].push_back(r); }));
  }

  // Interleave pushes across tenants in fixed chunks.
  for (std::size_t off = 0; ; off += 97) {
    bool any = false;
    for (unsigned i = 0; i < kSessions; ++i) {
      if (off >= streams[i].size()) continue;
      const std::size_t take = std::min<std::size_t>(97, streams[i].size() - off);
      sessions[i]->push(
          std::span<const std::int32_t>(streams[i]).subspan(off, take));
      any = true;
    }
    if (!any) break;
  }
  server.finish();

  for (unsigned i = 0; i < kSessions; ++i) {
    SCOPED_TRACE("session " + std::to_string(i));
    const auto want = slice_windows(streams[i], app::kWindow, app::kWindow,
                                    /*flush_tail=*/true);
    const auto& got = delivered[i];
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t w = 0; w < want.size(); ++w) {
      SCOPED_TRACE("window " + std::to_string(w));
      EXPECT_EQ(got[w].index, w);
      EXPECT_EQ(got[w].job.output, i % 2 == 1 ? offline_pipeline(want[w], taps)
                                              : offline_bio(want[w]));
      // Soft-pinning: every window of a session ran on its device.
      EXPECT_EQ(got[w].job.device, sessions[i]->device());
    }
  }
  const ServerStats st = server.stats();
  EXPECT_EQ(st.fleet.jobs_failed, 0u);
  EXPECT_GT(st.windows_per_sim_second(), 0.0);
  EXPECT_GT(st.fleet_occupancy(), 0.0);
}

TEST(StreamServer, DeliveredResultsInvariantToWorkerCount) {
  // The same tenant streams on 1-worker and 4-worker servers must deliver
  // bit- and cycle-identical windows: worker threads are interchangeable
  // executors of the simulated fleet.
  auto run_with_workers = [](unsigned workers) {
    StreamServer::Config scfg;
    scfg.pool.devices = 4;
    scfg.pool.workers = workers;
    StreamServer server(scfg);
    std::map<std::uint64_t, std::vector<WindowResult>> delivered;
    std::vector<Session*> sessions;
    std::vector<std::vector<std::int32_t>> streams;
    for (unsigned i = 0; i < 6; ++i) {
      streams.push_back(make_stream(2 * app::kWindow + 101 * i,
                                    0.2 + 0.05 * i, 950 + i));
      SessionConfig cfg;
      if (i >= 4) cfg.kind = SessionKind::kPipeline;
      sessions.push_back(&server.open_session(cfg, [&](const WindowResult& r) {
        delivered[r.session].push_back(r);
      }));
    }
    for (unsigned i = 0; i < 6; ++i) sessions[i]->push(streams[i]);
    server.finish();
    return delivered;
  };

  const auto base = run_with_workers(1);
  const auto got = run_with_workers(4);
  ASSERT_EQ(got.size(), base.size());
  for (const auto& [sid, results] : base) {
    SCOPED_TRACE("session " + std::to_string(sid));
    const auto& g = got.at(sid);
    ASSERT_EQ(g.size(), results.size());
    for (std::size_t w = 0; w < results.size(); ++w) {
      SCOPED_TRACE("window " + std::to_string(w));
      EXPECT_EQ(g[w].job.output, results[w].job.output);
      EXPECT_EQ(g[w].job.device, results[w].job.device);
      EXPECT_EQ(g[w].job.cost.cpu_cycles, results[w].job.cost.cpu_cycles);
      EXPECT_EQ(g[w].job.cost.vwr2a_cycles, results[w].job.cost.vwr2a_cycles);
      EXPECT_EQ(g[w].job.cost.vwr2a_pj, results[w].job.cost.vwr2a_pj);
      EXPECT_EQ(g[w].job.cost.sys_pj, results[w].job.cost.sys_pj);
    }
  }
}

TEST(StreamSession, TryPushDropsAreAccounted) {
  StreamServer server;
  SessionConfig cfg;
  cfg.buffer_capacity = app::kWindow;  // one-window ring
  std::uint64_t delivered = 0;
  Session& s = server.open_session(cfg,
                                   [&](const WindowResult&) { ++delivered; });

  // A push larger than the whole ring can never fit: guaranteed drop,
  // independent of worker timing.
  std::vector<std::int32_t> big(app::kWindow + 64, 0);
  EXPECT_FALSE(s.try_push(big));
  SessionStats st = s.stats();
  EXPECT_EQ(st.dropped_pushes, 1u);
  EXPECT_EQ(st.dropped_samples, big.size());
  EXPECT_EQ(st.samples_in, 0u);

  // Fitting pushes are accepted and eventually delivered; accounting must
  // balance exactly: accepted = delivered windows * window (hop == window,
  // stream length divisible by the window, no tail).
  const auto samples = make_stream(2 * app::kWindow, 0.3, 977);
  std::size_t off = 0;
  std::uint64_t accepted = 0, dropped_pushes = 1, dropped_samples = big.size();
  while (off < samples.size()) {
    const std::size_t take = std::min<std::size_t>(128, samples.size() - off);
    const auto chunk = std::span<const std::int32_t>(samples).subspan(off, take);
    if (s.try_push(chunk)) {
      accepted += take;
      off += take;
    } else {
      // Ring full while windows are in flight: retry after a blocking
      // drain of one result. (Drops stay counted.)
      ++dropped_pushes;
      dropped_samples += take;
      s.drain();
    }
  }
  s.finish();
  st = s.stats();
  EXPECT_EQ(st.samples_in, accepted);
  EXPECT_EQ(st.dropped_pushes, dropped_pushes);
  EXPECT_EQ(st.dropped_samples, dropped_samples);
  EXPECT_EQ(st.windows_submitted, accepted / app::kWindow);
  EXPECT_EQ(st.windows_delivered, st.windows_submitted);
  EXPECT_EQ(delivered, st.windows_delivered);
}

TEST(StreamServer, CompletionLanesBitIdenticalToProducerReaping) {
  // The delivery-mode switch must not change a single delivered bit or
  // cycle: completion lanes only move *where* the sink runs. Same streams,
  // producer-thread reaping vs 3 lanes.
  auto run = [](unsigned completion_threads) {
    StreamServer::Config scfg;
    scfg.pool.devices = 4;
    scfg.completion_threads = completion_threads;
    StreamServer server(scfg);
    std::vector<std::vector<std::int32_t>> streams;
    // One pre-sized result slot per session: a session is delivered by
    // exactly one lane sequentially (single writer per slot, no container
    // mutation), and finish() orders those writes before the reads below.
    std::vector<std::vector<WindowResult>> delivered(6);
    std::vector<Session*> sessions;
    for (unsigned i = 0; i < 6; ++i) {
      streams.push_back(make_stream(3 * app::kWindow + 119 * i,
                                    0.2 + 0.05 * i, 1200 + i));
      SessionConfig cfg;
      if (i % 2 == 1) {
        cfg.kind = SessionKind::kPipeline;
        cfg.hop = 256;
      }
      sessions.push_back(&server.open_session(cfg, [&delivered, i](
                                                       const WindowResult& r) {
        delivered[i].push_back(r);
      }));
    }
    for (unsigned i = 0; i < 6; ++i) sessions[i]->push(streams[i]);
    server.finish();
    return delivered;
  };

  const auto base = run(0);
  const auto lanes = run(3);
  ASSERT_EQ(lanes.size(), base.size());
  for (std::size_t sid = 0; sid < base.size(); ++sid) {
    SCOPED_TRACE("session " + std::to_string(sid));
    const auto& results = base[sid];
    const auto& g = lanes[sid];
    ASSERT_EQ(g.size(), results.size());
    ASSERT_GT(results.size(), 0u);
    for (std::size_t w = 0; w < results.size(); ++w) {
      SCOPED_TRACE("window " + std::to_string(w));
      EXPECT_EQ(g[w].index, results[w].index);
      EXPECT_EQ(g[w].job.output, results[w].job.output);
      EXPECT_EQ(g[w].job.device, results[w].job.device);
      EXPECT_EQ(g[w].job.cost.cpu_cycles, results[w].job.cost.cpu_cycles);
      EXPECT_EQ(g[w].job.cost.vwr2a_cycles, results[w].job.cost.vwr2a_cycles);
      EXPECT_EQ(g[w].job.cost.vwr2a_pj, results[w].job.cost.vwr2a_pj);
    }
  }
}

TEST(StreamServer, BlockingSinkDoesNotStallOtherSessionsIngest) {
  // The ROADMAP "sinks may block" item, as a latency assertion: session A's
  // sink parks on a condition variable at its first window; session B --
  // on another delivery lane -- must ingest AND deliver its whole stream
  // while A's sink is still parked, and promptly.
  using Clock = std::chrono::steady_clock;
  StreamServer::Config scfg;
  scfg.pool.devices = 2;
  scfg.completion_threads = 2;  // session id % 2: A -> lane 0, B -> lane 1
  StreamServer server(scfg);

  std::mutex m;
  std::condition_variable cv;
  bool release_a = false;
  std::atomic<std::uint64_t> a_delivered{0};
  std::atomic<std::uint64_t> b_delivered{0};

  Session& a = server.open_session({}, [&](const WindowResult&) {
    ++a_delivered;
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release_a; });
  });
  Session& b = server.open_session(
      {}, [&](const WindowResult&) { ++b_delivered; });

  const unsigned kWindows = 6;
  const auto sa = make_stream(kWindows * app::kWindow, 0.2, 1301);
  const auto sb = make_stream(kWindows * app::kWindow, 0.3, 1302);

  // A's producer on its own thread; it will fill max_inflight and block on
  // backpressure behind the parked sink -- by design.
  std::thread producer_a([&] {
    a.push(sa);
    a.finish();
  });

  const auto t0 = Clock::now();
  b.push(sb);
  b.finish();
  const double b_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  // B fully ingested and delivered while A's sink never moved past its
  // first window: a blocking sink stalls neither another session's ingest
  // nor its delivery on another lane.
  EXPECT_EQ(b_delivered.load(), kWindows);
  EXPECT_LE(a_delivered.load(), 1u);
  // The latency assertion: B's whole stream (ingest + delivery) completed
  // promptly. The bound is generous against slow CI hosts; without the
  // lanes it would deadlock (A's sink never returns), not just slow down.
  EXPECT_LT(b_seconds, 30.0);

  {
    std::lock_guard<std::mutex> lock(m);
    release_a = true;
  }
  cv.notify_all();
  producer_a.join();
  server.finish();
  EXPECT_EQ(a_delivered.load(), kWindows);
  EXPECT_EQ(a.stats().windows_delivered, kWindows);
}

TEST(StreamSession, TryPushDropAccountingUnderConcurrentProducers) {
  // The drop-accounting invariant under fire: 8 sessions hammered by 8
  // concurrent producer threads with non-blocking pushes while delivery
  // lanes reap in parallel. For every session, offered chunks must be
  // fully accounted: drops + delivered windows == windows offered, and
  // samples_in + dropped_samples == samples offered. (Chunks are exactly
  // one window, hop == window, so accepted samples map 1:1 to windows and
  // a flush never leaves a tail.)
  constexpr unsigned kSessions = 8;
  constexpr unsigned kChunksPerSession = 24;
  StreamServer::Config scfg;
  scfg.pool.devices = 4;
  scfg.completion_threads = 3;
  StreamServer server(scfg);

  std::vector<std::atomic<std::uint64_t>> sink_counts(kSessions);
  std::vector<Session*> sessions;
  std::vector<std::vector<std::int32_t>> streams;
  for (unsigned i = 0; i < kSessions; ++i) {
    streams.push_back(make_stream(kChunksPerSession * app::kWindow,
                                  0.15 + 0.04 * i, 1400 + i));
    SessionConfig cfg;
    if (i % 2 == 1) cfg.kind = SessionKind::kPipeline;
    cfg.max_inflight = 2;
    cfg.buffer_capacity = 2 * app::kWindow;  // tight: force real drops
    sessions.push_back(&server.open_session(
        cfg, [&sink_counts, i](const WindowResult&) { ++sink_counts[i]; }));
  }

  std::vector<std::thread> producers;
  std::vector<std::uint64_t> rejected(kSessions, 0);
  for (unsigned i = 0; i < kSessions; ++i) {
    producers.emplace_back([&, i] {
      for (unsigned c = 0; c < kChunksPerSession; ++c) {
        const auto chunk = std::span<const std::int32_t>(streams[i])
                               .subspan(c * app::kWindow, app::kWindow);
        if (!sessions[i]->try_push(chunk)) ++rejected[i];
      }
      sessions[i]->finish();
    });
  }
  for (auto& t : producers) t.join();
  server.finish();

  for (unsigned i = 0; i < kSessions; ++i) {
    SCOPED_TRACE("session " + std::to_string(i));
    const SessionStats st = sessions[i]->stats();
    // Every offered sample is either accepted or dropped -- never both,
    // never lost.
    EXPECT_EQ(st.samples_in + st.dropped_samples,
              std::uint64_t{kChunksPerSession} * app::kWindow);
    EXPECT_EQ(st.dropped_pushes, rejected[i]);
    EXPECT_EQ(st.dropped_samples, rejected[i] * app::kWindow);
    // Accepted samples became exactly their windows, all delivered.
    EXPECT_EQ(st.windows_submitted, st.samples_in / app::kWindow);
    EXPECT_EQ(st.windows_delivered, st.windows_submitted);
    EXPECT_EQ(st.windows_failed, 0u);
    EXPECT_EQ(sink_counts[i].load(), st.windows_delivered);
    // The headline invariant: drops + delivered == windows offered.
    EXPECT_EQ(st.dropped_pushes + st.windows_delivered, kChunksPerSession);
  }
}

TEST(StreamServer, SessionsSpreadAcrossDevices) {
  // Shortest-local-clock placement with reservations: equally-weighted
  // sessions opened back-to-back must spread over the fleet instead of
  // clustering on device 0.
  StreamServer::Config scfg;
  scfg.pool.devices = 4;
  StreamServer server(scfg);
  std::map<unsigned, unsigned> per_device;
  for (unsigned i = 0; i < 8; ++i) {
    per_device[server.open_session().device()]++;
  }
  ASSERT_EQ(per_device.size(), 4u);
  for (const auto& [dev, count] : per_device) EXPECT_EQ(count, 2u) << dev;
}

TEST(Windower, StreamShorterThanOneHopFlushesExactlyOneTail) {
  // Total samples < one hop: no full window exists, but the samples must
  // not be dropped -- the flush emits exactly one zero-padded tail window,
  // and never a second (spurious all-zero) one.
  for (const unsigned hop : {8u, 4u}) {
    SCOPED_TRACE("hop " + std::to_string(hop));
    Windower w(8, hop, 32);
    const std::vector<std::int32_t> tiny = {7, 8, 9};
    w.push(tiny);
    EXPECT_FALSE(w.has_window());
    ASSERT_TRUE(w.has_tail());
    const std::vector<std::int32_t> want = {7, 8, 9, 0, 0, 0, 0, 0};
    EXPECT_EQ(w.pop_tail(), want);
    EXPECT_FALSE(w.has_tail());  // one tail, never two
    EXPECT_FALSE(w.has_window());
  }
}

TEST(Windower, ExactWindowMultipleLeavesNoSpuriousTail) {
  // Total samples an exact multiple of the window (hop == window): every
  // sample is covered by a full window and a flush must emit nothing more.
  Windower w(8, 8, 32);
  std::vector<std::int32_t> stream(16);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    stream[i] = static_cast<std::int32_t>(i + 1);
  }
  w.push(stream);
  const auto want = slice_windows(stream, 8, 8, /*flush_tail=*/true);
  ASSERT_EQ(want.size(), 2u);  // the golden agrees: no padded third window
  std::vector<std::vector<std::int32_t>> got;
  while (w.has_window()) got.push_back(w.pop_window());
  EXPECT_EQ(got, want);
  EXPECT_FALSE(w.has_tail());
  EXPECT_EQ(w.size(), 0u);
}

TEST(StreamSession, BoundaryStreamsDeliverExactWindowCounts) {
  // The Windower boundary pins, end to end through a session: an exact
  // two-window stream delivers exactly 2 windows; a sub-hop stream
  // delivers exactly 1 (padded); both bit-match the offline slicing.
  StreamServer server;
  for (const std::size_t total : {2 * (std::size_t)app::kWindow,
                                  (std::size_t)137}) {
    SCOPED_TRACE("stream of " + std::to_string(total));
    const auto samples =
        make_stream(total, 0.3, 1500 + static_cast<unsigned>(total));
    std::vector<WindowResult> delivered;
    Session& s = server.open_session(
        {}, [&](const WindowResult& r) { delivered.push_back(r); });
    s.push(samples);
    s.finish();
    const auto want =
        slice_windows(samples, app::kWindow, app::kWindow, /*flush_tail=*/true);
    ASSERT_EQ(delivered.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(delivered[i].job.output, offline_bio(want[i])) << i;
    }
    EXPECT_EQ(s.stats().windows_submitted, want.size());
  }
}

TEST(StreamSession, EnqueueAfterStopRollsBackAndNeverHangsDrain) {
  // PR 5 left a warning at the submit rollback: undoing the in-flight slot
  // claim without waking slot_cv_ leaves a concurrent drain() asleep
  // forever. Regression: push against a stopped completer must throw, and
  // drain() afterwards must return promptly.
  runtime::DevicePool pool;
  Completer completer(1);
  std::uint64_t delivered = 0;
  Session session(1, pool, 0, SessionConfig{},
                  [&](const WindowResult&) { ++delivered; }, &completer,
                  nullptr);

  const auto samples = make_stream(app::kWindow, 0.3, 1600);
  session.push(samples);
  session.drain();
  EXPECT_EQ(delivered, 1u);

  completer.stop();
  EXPECT_THROW(session.push(samples), HostError);  // enqueue after stop
  EXPECT_EQ(session.inflight(), 0u);               // slot rolled back

  // The load-bearing part: drain() must see the rolled-back slot and
  // return instead of waiting for a delivery that will never come.
  std::atomic<bool> drained{false};
  std::thread waiter([&] {
    session.drain();
    drained.store(true);
  });
  for (int spin = 0; spin < 500 && !drained.load(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(drained.load());  // would hang before the notify fix
  waiter.join();
  EXPECT_EQ(session.stats().windows_submitted, 1u);  // rollback accounted
}

TEST(StreamServer, SessionSurvivesItsDeviceDyingMidStream) {
  // The tentpole, at the stream layer: a session's device dies between
  // windows; the pin follows the failover chain, the resident image moves
  // via checkpoint, and delivery stays ordered and bit-identical to an
  // undisturbed run. The co-tenant on the surviving device never notices.
  StreamServer::Config scfg;
  scfg.pool.devices = 2;
  scfg.pool.workers = 1;   // deterministic claim order
  scfg.pool.max_batch = 1;
  scfg.completion_threads = 2;
  StreamServer server(scfg);

  std::vector<std::vector<WindowResult>> delivered(2);
  Session& victim = server.open_session(
      {}, [&](const WindowResult& r) { delivered[0].push_back(r); });
  Session& bystander = server.open_session(
      {}, [&](const WindowResult& r) { delivered[1].push_back(r); });
  ASSERT_NE(victim.device(), bystander.device());

  const auto sv = make_stream(4 * app::kWindow, 0.2, 1700);
  const auto sb = make_stream(4 * app::kWindow, 0.4, 1701);
  const auto half = std::span<const std::int32_t>(sv).subspan(0, sv.size() / 2);

  victim.push(half);
  bystander.push(sb);
  victim.drain();
  bystander.drain();

  ASSERT_TRUE(server.pool().kill_device(victim.device()));
  victim.push(std::span<const std::int32_t>(sv).subspan(sv.size() / 2));
  victim.finish();
  bystander.finish();
  server.finish();

  for (unsigned i = 0; i < 2; ++i) {
    SCOPED_TRACE("session " + std::to_string(i));
    const auto& stream_i = i == 0 ? sv : sb;
    const auto want = slice_windows(stream_i, app::kWindow, app::kWindow,
                                    /*flush_tail=*/true);
    ASSERT_EQ(delivered[i].size(), want.size());
    for (std::size_t w = 0; w < want.size(); ++w) {
      EXPECT_EQ(delivered[i][w].index, w);  // ordered despite re-placement
      EXPECT_EQ(delivered[i][w].job.output, offline_bio(want[w]))
          << "window " << w;
    }
  }
  // The victim's post-fault windows ran on the surviving device...
  EXPECT_EQ(delivered[0][3].job.device, bystander.device());
  const SessionStats vs = victim.stats();
  EXPECT_GE(vs.windows_migrated, 1u);
  EXPECT_EQ(vs.device, bystander.device());
  // ...and the bystander never moved.
  EXPECT_EQ(bystander.stats().windows_migrated, 0u);
  const runtime::FleetStats fs = server.pool().stats();
  EXPECT_EQ(fs.devices_failed, 1u);
  EXPECT_EQ(fs.jobs_failed, 0u);
  EXPECT_EQ(fs.checkpoints_taken, 1u);
  // The failover target already hosts a resident image (the bystander's),
  // which is bit-equivalent by construction -- adoption is skipped, and
  // that skip is precisely why the outputs above could match the golden.
  EXPECT_EQ(fs.checkpoints_restored, 0u);
}

} // namespace
} // namespace vwr2a::stream
