// VWR2A FFT kernels against the exact fixed-point golden model. These are
// bit-exact comparisons: the microcode must reproduce dsp::pease_fft_fx /
// dsp::rfft_fx word for word.

#include <gtest/gtest.h>

#include "bus/ahb.hpp"
#include "cgra/vwr2a.hpp"
#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "dsp/reference.hpp"
#include "energy/meter.hpp"
#include "kernels/fft.hpp"
#include "kernels/host.hpp"
#include "mem/sram.hpp"

namespace vwr2a::kernels {
namespace {

struct Rig {
  energy::EnergyMeter sys_meter;
  mem::SystemSram sram{sys_meter};
  bus::AhbBus ahb{sram, sys_meter};
  cgra::Vwr2a acc{ahb};
  Host host{acc, sram, nullptr};
  FftKernels fft{host};

  static constexpr unsigned kTw = 0;
  unsigned in = 0, out = 0, scratch = 0;

  explicit Rig(unsigned n) {
    fft.prepare(kTw);
    in = FftKernels::table_words();
    out = in + 2 * n + 2;
    scratch = out + 2 * n + 2;
  }
};

class CfftSizes : public ::testing::TestWithParam<unsigned> {};

TEST_P(CfftSizes, BitExactAgainstGolden) {
  const unsigned n = GetParam();
  Rig rig(n);
  Rng rng(n);
  std::vector<dsp::CplxFx> x(n);
  for (unsigned i = 0; i < n; ++i) {
    x[i] = {fx::to_q16_15(rng.next_range(-0.9, 0.9)),
            fx::to_q16_15(rng.next_range(-0.9, 0.9))};
    rig.sram.poke(rig.in + 2 * i, static_cast<Word>(x[i].re));
    rig.sram.poke(rig.in + 2 * i + 1, static_cast<Word>(x[i].im));
  }
  const FftRunStats stats = rig.fft.cfft(n, rig.in, rig.out, rig.scratch);
  EXPECT_GT(stats.cycles, 0u);
  const auto golden = dsp::pease_fft_fx(x);
  for (unsigned k = 0; k < n; ++k) {
    EXPECT_EQ(static_cast<std::int32_t>(rig.sram.peek(rig.out + 2 * k)),
              golden[k].re)
        << "re bin " << k;
    EXPECT_EQ(static_cast<std::int32_t>(rig.sram.peek(rig.out + 2 * k + 1)),
              golden[k].im)
        << "im bin " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CfftSizes, ::testing::Values(256u, 512u, 1024u));

class RfftSizes : public ::testing::TestWithParam<unsigned> {};

TEST_P(RfftSizes, BitExactAgainstGolden) {
  const unsigned n = GetParam();
  Rig rig(n);
  Rng rng(n + 1);
  std::vector<std::int32_t> x(n);
  for (unsigned i = 0; i < n; ++i) {
    x[i] = fx::to_q16_15(rng.next_range(-0.9, 0.9));
    rig.sram.poke(rig.in + i, static_cast<Word>(x[i]));
  }
  const FftRunStats stats = rig.fft.rfft(n, rig.in, rig.out, rig.scratch);
  EXPECT_GT(stats.cycles, 0u);
  const auto golden = dsp::rfft_fx(x);
  for (unsigned k = 0; k <= n / 2; ++k) {
    EXPECT_EQ(static_cast<std::int32_t>(rig.sram.peek(rig.out + 2 * k)),
              golden[k].re)
        << "re bin " << k;
    EXPECT_EQ(static_cast<std::int32_t>(rig.sram.peek(rig.out + 2 * k + 1)),
              golden[k].im)
        << "im bin " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RfftSizes, ::testing::Values(512u, 1024u, 2048u));

TEST(Cfft2048, BitExactAgainstGolden) {
  const unsigned n = 2048;
  Rig rig(n);
  Rng rng(n);
  std::vector<dsp::CplxFx> x(n);
  for (unsigned i = 0; i < n; ++i) {
    x[i] = {fx::to_q16_15(rng.next_range(-0.4, 0.4)),
            fx::to_q16_15(rng.next_range(-0.4, 0.4))};
    rig.sram.poke(rig.in + 2 * i, static_cast<Word>(x[i].re));
    rig.sram.poke(rig.in + 2 * i + 1, static_cast<Word>(x[i].im));
  }
  rig.fft.cfft(n, rig.in, rig.out, rig.scratch);
  // Golden: X[k] = E[k] + W^k O[k]; X[k+1024] = E[k] - W^k O[k], with E/O
  // the 1024-point CG-FFTs and the same coefficient arithmetic.
  std::vector<dsp::CplxFx> ev(1024), od(1024);
  for (unsigned i = 0; i < 1024; ++i) {
    ev[i] = x[2 * i];
    od[i] = x[2 * i + 1];
  }
  const auto fe = dsp::pease_fft_fx(ev);
  const auto fo = dsp::pease_fft_fx(od);
  constexpr double kPi = 3.14159265358979323846;
  for (unsigned k = 0; k < 1024; ++k) {
    dsp::CplxFx w{fx::to_coeff(std::cos(-2.0 * kPi * k / n)),
                  fx::to_coeff(std::sin(-2.0 * kPi * k / n))};
    const std::int32_t tre = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(fx::fxp_mul(fo[k].re, w.re)) -
        static_cast<std::uint32_t>(fx::fxp_mul(fo[k].im, w.im)));
    const std::int32_t tim = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(fx::fxp_mul(fo[k].re, w.im)) +
        static_cast<std::uint32_t>(fx::fxp_mul(fo[k].im, w.re)));
    const std::int32_t lo_re = fe[k].re + tre;
    const std::int32_t lo_im = fe[k].im + tim;
    const std::int32_t hi_re = fe[k].re - tre;
    const std::int32_t hi_im = fe[k].im - tim;
    EXPECT_EQ(static_cast<std::int32_t>(rig.sram.peek(rig.out + 2 * k)), lo_re) << k;
    EXPECT_EQ(static_cast<std::int32_t>(rig.sram.peek(rig.out + 2 * k + 1)), lo_im) << k;
    EXPECT_EQ(static_cast<std::int32_t>(rig.sram.peek(rig.out + 2 * (k + 1024))),
              hi_re) << k;
    EXPECT_EQ(static_cast<std::int32_t>(rig.sram.peek(rig.out + 2 * (k + 1024) + 1)),
              hi_im) << k;
  }
}

TEST(FftCycles, InPaperBallpark) {
  // Table 2 reports 7125 cycles for the 512-point complex FFT on VWR2A;
  // the reproduction should land within a factor ~1.5 (shape, not identity).
  Rig rig(512);
  for (unsigned i = 0; i < 1024; ++i) rig.sram.poke(rig.in + i, 0);
  const FftRunStats stats = rig.fft.cfft(512, rig.in, rig.out, rig.scratch);
  EXPECT_GT(stats.cycles, 7125u / 2);
  EXPECT_LT(stats.cycles, 7125u * 2);
}

} // namespace
} // namespace vwr2a::kernels
