// FFT property tests on the VWR2A kernel (not just point comparisons):
// impulse response, DC input, linearity, Parseval's theorem, conjugate
// symmetry of real-input spectra, and tracer observability.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "bus/ahb.hpp"
#include "cgra/trace.hpp"
#include "cgra/vwr2a.hpp"
#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "dsp/reference.hpp"
#include "energy/meter.hpp"
#include "kernels/fft.hpp"
#include "kernels/host.hpp"
#include "mem/sram.hpp"

namespace vwr2a::kernels {
namespace {

struct Rig {
  energy::EnergyMeter sys_meter;
  mem::SystemSram sram{sys_meter};
  bus::AhbBus ahb{sram, sys_meter};
  cgra::Vwr2a acc{ahb};
  Host host{acc, sram, nullptr};
  FftKernels fft{host};
  unsigned in = FftKernels::table_words();
  unsigned out = 0, scratch = 0;
  Rig() {
    fft.prepare(0);
    out = in + 4100;
    scratch = out + 4100;
  }

  void place(const std::vector<dsp::CplxFx>& x) {
    for (unsigned i = 0; i < x.size(); ++i) {
      sram.poke(in + 2 * i, static_cast<Word>(x[i].re));
      sram.poke(in + 2 * i + 1, static_cast<Word>(x[i].im));
    }
  }
  dsp::CplxFx bin(unsigned k) const {
    return {static_cast<std::int32_t>(sram.peek(out + 2 * k)),
            static_cast<std::int32_t>(sram.peek(out + 2 * k + 1))};
  }
};

TEST(FftProps, ImpulseGivesFlatSpectrum) {
  Rig rig;
  std::vector<dsp::CplxFx> x(512, dsp::CplxFx{0, 0});
  x[0].re = fx::to_q16_15(0.5);
  rig.place(x);
  rig.fft.cfft(512, rig.in, rig.out, rig.scratch);
  for (unsigned k = 0; k < 512; ++k) {
    EXPECT_EQ(rig.bin(k).re, fx::to_q16_15(0.5)) << k;
    EXPECT_EQ(rig.bin(k).im, 0) << k;
  }
}

TEST(FftProps, DcGivesSingleBin) {
  Rig rig;
  std::vector<dsp::CplxFx> x(512, dsp::CplxFx{fx::to_q16_15(0.01), 0});
  rig.place(x);
  rig.fft.cfft(512, rig.in, rig.out, rig.scratch);
  EXPECT_NEAR(fx::from_q16_15(rig.bin(0).re), 0.01 * 512, 0.05);
  for (unsigned k = 1; k < 512; ++k) {
    EXPECT_LT(std::abs(fx::from_q16_15(rig.bin(k).re)), 0.02) << k;
    EXPECT_LT(std::abs(fx::from_q16_15(rig.bin(k).im)), 0.02) << k;
  }
}

TEST(FftProps, Linearity) {
  // FFT(a) + FFT(b) == FFT(a + b) up to fixed-point truncation noise.
  Rng rng(21);
  Rig ra, rb, rs;
  std::vector<dsp::CplxFx> a(256), b(256), s(256);
  for (unsigned i = 0; i < 256; ++i) {
    a[i] = {fx::to_q16_15(rng.next_range(-0.3, 0.3)),
            fx::to_q16_15(rng.next_range(-0.3, 0.3))};
    b[i] = {fx::to_q16_15(rng.next_range(-0.3, 0.3)),
            fx::to_q16_15(rng.next_range(-0.3, 0.3))};
    s[i] = {a[i].re + b[i].re, a[i].im + b[i].im};
  }
  ra.place(a);
  rb.place(b);
  rs.place(s);
  ra.fft.cfft(256, ra.in, ra.out, ra.scratch);
  rb.fft.cfft(256, rb.in, rb.out, rb.scratch);
  rs.fft.cfft(256, rs.in, rs.out, rs.scratch);
  for (unsigned k = 0; k < 256; ++k) {
    EXPECT_NEAR(fx::from_q16_15(ra.bin(k).re + rb.bin(k).re),
                fx::from_q16_15(rs.bin(k).re), 0.02)
        << k;
    EXPECT_NEAR(fx::from_q16_15(ra.bin(k).im + rb.bin(k).im),
                fx::from_q16_15(rs.bin(k).im), 0.02)
        << k;
  }
}

TEST(FftProps, ParsevalApproximately) {
  Rng rng(23);
  Rig rig;
  std::vector<dsp::CplxFx> x(512);
  double sig_energy = 0;
  for (auto& v : x) {
    const double re = rng.next_range(-0.4, 0.4);
    const double im = rng.next_range(-0.4, 0.4);
    v = {fx::to_q16_15(re), fx::to_q16_15(im)};
    sig_energy += re * re + im * im;
  }
  rig.place(x);
  rig.fft.cfft(512, rig.in, rig.out, rig.scratch);
  double spec_energy = 0;
  for (unsigned k = 0; k < 512; ++k) {
    const double re = fx::from_q16_15(rig.bin(k).re);
    const double im = fx::from_q16_15(rig.bin(k).im);
    spec_energy += re * re + im * im;
  }
  EXPECT_NEAR(spec_energy / 512.0, sig_energy, 0.02 * sig_energy);
}

TEST(FftProps, RealInputHasConjugateSymmetry) {
  Rng rng(25);
  Rig rig;
  std::vector<dsp::CplxFx> x(512);
  for (auto& v : x) v = {fx::to_q16_15(rng.next_range(-0.5, 0.5)), 0};
  rig.place(x);
  rig.fft.cfft(512, rig.in, rig.out, rig.scratch);
  for (unsigned k = 1; k < 256; ++k) {
    EXPECT_NEAR(fx::from_q16_15(rig.bin(k).re),
                fx::from_q16_15(rig.bin(512 - k).re), 0.05)
        << k;
    EXPECT_NEAR(fx::from_q16_15(rig.bin(k).im),
                -fx::from_q16_15(rig.bin(512 - k).im), 0.05)
        << k;
  }
}

TEST(FftProps, RfftMatchesCfftHalfSpectrum) {
  // The optimized real path must agree with a complex FFT of the same
  // real signal (within the different rounding paths of the two flows).
  Rng rng(27);
  Rig r1, r2;
  std::vector<std::int32_t> xr(512);
  std::vector<dsp::CplxFx> xc(512);
  for (unsigned i = 0; i < 512; ++i) {
    xr[i] = fx::to_q16_15(rng.next_range(-0.5, 0.5));
    xc[i] = {xr[i], 0};
    r1.sram.poke(r1.in + i, static_cast<Word>(xr[i]));
  }
  r2.place(xc);
  r1.fft.rfft(512, r1.in, r1.out, r1.scratch);
  r2.fft.cfft(512, r2.in, r2.out, r2.scratch);
  for (unsigned k = 0; k <= 256; ++k) {
    EXPECT_NEAR(fx::from_q16_15(r1.bin(k).re), fx::from_q16_15(r2.bin(k).re), 0.03)
        << k;
    EXPECT_NEAR(fx::from_q16_15(r1.bin(k).im), fx::from_q16_15(r2.bin(k).im), 0.03)
        << k;
  }
}

TEST(FftProps, TracerObservesExecution) {
  Rig rig;
  cgra::TextTracer tracer(4096);
  rig.acc.set_tracer(&tracer);
  std::vector<dsp::CplxFx> x(256, dsp::CplxFx{1000, 0});
  rig.place(x);
  rig.fft.cfft(256, rig.in, rig.out, rig.scratch);
  rig.acc.set_tracer(nullptr);
  const std::string t = tracer.str();
  EXPECT_NE(t.find("fxpmul"), std::string::npos);
  EXPECT_NE(t.find("pc="), std::string::npos);
}

} // namespace
} // namespace vwr2a::kernels
