// Flight recorder and metrics registry: counter exactness under concurrent
// recorders, histogram quantile bounds, Prometheus exposition, the
// disabled-mode no-op guarantees, ring-buffer drop-oldest semantics with
// exact drop accounting, capture save/load round-trips and Chrome JSON
// export, and -- the end-to-end gate -- cross-thread window-chain
// reconstruction under 8 concurrent gateway-style sessions.
//
// Tests here mutate the process-wide obs flags; each one that enables
// metrics/tracing restores the disabled default and resets the singletons
// on exit so test order never matters.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dsp/signal.hpp"
#include "obs/capture.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "stream/server.hpp"

namespace vwr2a::obs {
namespace {

/// Enables the requested features for one test and restores the disabled
/// default (plus clean singletons) afterwards.
struct ObsScope {
  explicit ObsScope(bool metrics, bool tracing) {
    Registry::get().reset();
    Tracer::get().reset();
    set_metrics(metrics);
    set_tracing(tracing);
  }
  ~ObsScope() {
    set_metrics(false);
    set_tracing(false);
    Registry::get().reset();
    Tracer::get().reset();
  }
};

TEST(ObsMetrics, CounterIsExactAcrossEightThreads) {
  ObsScope scope(true, false);
  Counter& c = Registry::get().counter("test.exact");
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 50000;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) c.add(1);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), kThreads * kAddsPerThread);
}

TEST(ObsMetrics, HistogramQuantileNeverUnderstates) {
  ObsScope scope(true, false);
  Histogram& h = Registry::get().histogram("test.quantile");
  // 1..1000 uniformly: p50's true value is 500, p99's is 990. The
  // log-bucketed estimate reports the bucket's inclusive upper bound, so
  // it must be >= the true value and within the 12.5% bucket resolution.
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  const std::uint64_t p50 = h.quantile(0.50);
  const std::uint64_t p99 = h.quantile(0.99);
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 500u + 500u / 8 + 1);
  EXPECT_GE(p99, 990u);
  EXPECT_LE(p99, 990u + 990u / 8 + 1);
  // Exact small-value buckets: a histogram of {0..7} reports exactly.
  Histogram& small = Registry::get().histogram("test.quantile_small");
  for (std::uint64_t v = 0; v < 8; ++v) small.record(v);
  EXPECT_EQ(small.quantile(0.0), 0u);
  EXPECT_EQ(small.quantile(1.0), 7u);
}

TEST(ObsMetrics, HistogramBucketBoundsArePerBucketInvariants) {
  // Every value lands in a bucket whose inclusive upper bound is >= the
  // value and less than 25% above it (exact below 8; the worst case is a
  // value just past a power of two, where the bucket spans value/4).
  for (std::uint64_t v : {0ull, 1ull, 7ull, 8ull, 9ull, 100ull, 1000ull,
                          (1ull << 32) + 12345ull, ~0ull}) {
    const std::size_t b = Histogram::bucket_of(v);
    ASSERT_LT(b, Histogram::kBuckets);
    const std::uint64_t hi = Histogram::bucket_upper(b);
    EXPECT_GE(hi, v);
    if (v >= 8 && hi != ~0ull) {
      EXPECT_LT(static_cast<double>(hi - v), static_cast<double>(v) * 0.25);
    }
  }
}

TEST(ObsMetrics, PrometheusDumpSanitizesAndSummarizes) {
  ObsScope scope(true, false);
  Registry::get().counter("session.3.windows_delivered").add(7);
  Registry::get().gauge("completer.queue_depth").set(-2);
  Histogram& h = Registry::get().histogram("session.latency_cycles");
  h.record(100);
  h.record(200);
  const std::string dump = Registry::get().dump_prometheus();
  EXPECT_NE(dump.find("session_3_windows_delivered 7"), std::string::npos);
  EXPECT_NE(dump.find("completer_queue_depth -2"), std::string::npos);
  EXPECT_NE(dump.find("session_latency_cycles_count 2"), std::string::npos);
  EXPECT_NE(dump.find("session_latency_cycles_sum 300"), std::string::npos);
  EXPECT_NE(dump.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_EQ(dump.find("session.3"), std::string::npos);  // dots sanitized
}

TEST(ObsMetrics, HistogramQuantileEdgeCases) {
  ObsScope scope(true, false);
  // Empty histogram: every quantile is the documented 0, not a crash or a
  // bucket bound.
  Histogram& empty = Registry::get().histogram("test.empty");
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.quantile(0.0), 0u);
  EXPECT_EQ(empty.quantile(0.5), 0u);
  EXPECT_EQ(empty.quantile(1.0), 0u);
  // Single sample: every quantile collapses to that sample's bucket bound
  // (exact for small values, never understating for large ones).
  Histogram& one = Registry::get().histogram("test.single");
  one.record(5);
  for (double p : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(one.quantile(p), 5u) << "p=" << p;
  }
  Histogram& big = Registry::get().histogram("test.single_big");
  big.record(1000);
  EXPECT_GE(big.quantile(0.5), 1000u);
  // Reset brings the quantiles back to the empty answer.
  one.reset();
  EXPECT_EQ(one.count(), 0u);
  EXPECT_EQ(one.quantile(0.5), 0u);
}

TEST(ObsMetrics, PrometheusDumpSurvivesHostileNames) {
  ObsScope scope(true, false);
  // Metric names flow in from wire-visible strings (tenant tags, session
  // labels); everything outside [a-zA-Z0-9_:] must be sanitized and the
  // dump must stay line-structured (no injected newlines or HELP forgery).
  Registry::get().counter("evil\nfake_metric 999").add(1);
  Registry::get().counter("spaced name{label=\"x\"}").add(2);
  Registry::get().counter("dash-dot.mix-9").add(3);
  const std::string dump = Registry::get().dump_prometheus();
  // No raw hostile bytes survive.
  EXPECT_EQ(dump.find("evil\nfake"), std::string::npos);
  EXPECT_EQ(dump.find("fake_metric 999 1"), std::string::npos);
  EXPECT_EQ(dump.find("spaced name"), std::string::npos);
  EXPECT_EQ(dump.find("{label"), std::string::npos);
  EXPECT_NE(dump.find("dash_dot_mix_9 3"), std::string::npos);
  // Every non-comment line is exactly "name[ {...}] value".
  std::size_t start = 0;
  while (start < dump.size()) {
    std::size_t end = dump.find('\n', start);
    if (end == std::string::npos) end = dump.size();
    const std::string line = dump.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.find(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    for (char ch : line.substr(0, sp)) {
      const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                      (ch >= '0' && ch <= '9') || ch == '_' || ch == ':' ||
                      ch == '{' || ch == '}' || ch == '=' || ch == '"' ||
                      ch == '.' || ch == ',';
      EXPECT_TRUE(ok) << "hostile char '" << ch << "' in: " << line;
    }
  }
}

TEST(ObsMetrics, ResetRacingAddStaysInBounds) {
  ObsScope scope(true, false);
  // reset() may race concurrent add()s: the contract is no torn counts and
  // a final value that only reflects post-reset adds that the reset did
  // not consume -- i.e. somewhere in [0, kAdds]. TSan builds of this test
  // are the data-race gate; the bounds check is meaningful everywhere.
  Counter& c = Registry::get().counter("test.reset_race");
  Histogram& h = Registry::get().histogram("test.reset_race_hist");
  constexpr std::uint64_t kAdds = 20000;
  std::thread adder([&c, &h] {
    for (std::uint64_t i = 0; i < kAdds; ++i) {
      c.add(1);
      h.record(i & 1023);
    }
  });
  for (int r = 0; r < 50; ++r) {
    c.reset();
    h.reset();
    EXPECT_LE(c.value(), kAdds);
    EXPECT_LE(h.count(), kAdds);
  }
  adder.join();
  EXPECT_LE(c.value(), kAdds);
  EXPECT_LE(h.count(), kAdds);
  // Quantile on a histogram that was reset mid-stream still answers from
  // whatever landed after the last reset.
  const std::uint64_t q = h.quantile(0.5);
  EXPECT_LE(q, 1023u + 1023u / 8 + 1);
}

TEST(ObsMetrics, DisabledModeRecordsNothingThroughTheSitePattern) {
  ObsScope scope(false, false);
  // The instrumentation-site pattern: guard, then record. With the guard
  // off the counter is never even registered.
  if (metrics_enabled()) {
    Registry::get().counter("test.should_not_exist").add(1);
  }
  for (const auto& e : Registry::get().entries()) {
    EXPECT_EQ(e.name.find("should_not_exist"), std::string::npos);
  }
  // Spans and instants are inert: nothing lands in any ring.
  const std::uint64_t before = Tracer::get().snapshot().events.size();
  {
    Span s("test.span", 42);
    instant("test.instant", 42);
  }
  EXPECT_EQ(Tracer::get().snapshot().events.size(), before);
}

TEST(ObsTrace, RingOverflowKeepsNewestAndCountsDropsExactly) {
  ObsScope scope(false, true);
  Tracer::get().set_ring_capacity(64);
  // A fresh thread gets the 64-slot ring; emit 200 events: the ring must
  // hold the newest 64 in order and report exactly 136 drops.
  std::thread t([] {
    for (std::uint64_t i = 0; i < 200; ++i) {
      instant("test.overflow", 0, i);
    }
  });
  t.join();
  const Tracer::Snapshot snap = Tracer::get().snapshot();
  std::vector<std::uint64_t> kept;
  for (const TraceEvent& e : snap.events) {
    if (std::string(e.name) == "test.overflow") kept.push_back(e.a1);
  }
  ASSERT_EQ(kept.size(), 64u);
  EXPECT_EQ(snap.dropped, 136u);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i], 136 + i);  // oldest-to-newest, newest 64 survive
  }
  Tracer::get().set_ring_capacity(32768);  // restore the default
}

TEST(ObsTrace, CaptureRoundTripsThroughDisk) {
  ObsScope scope(false, true);
  std::thread t([] {
    instant("test.rt_a", window_id(1, 2), 11, 22, 33);
    Span s("test.rt_b", window_id(1, 3));
    s.set_sim(1000, 250);
  });
  t.join();
  const std::string path = ::testing::TempDir() + "obs_roundtrip.vwr2trc";
  std::string why;
  ASSERT_TRUE(Tracer::get().save(path, &why)) << why;
  Capture cap;
  ASSERT_TRUE(load_capture(path, &cap, &why)) << why;
  std::remove(path.c_str());
  ASSERT_EQ(cap.events.size(), 2u);
  const auto& a = cap.events[0];
  const auto& b = cap.events[1];
  EXPECT_EQ(cap.name_of(a), "test.rt_a");
  EXPECT_EQ(a.kind, 1);
  EXPECT_EQ(a.window, window_id(1, 2));
  EXPECT_EQ(a.a1, 11u);
  EXPECT_EQ(a.a3, 33u);
  EXPECT_EQ(cap.name_of(b), "test.rt_b");
  EXPECT_EQ(b.kind, 0);
  EXPECT_EQ(b.sim_begin, 1000u);
  EXPECT_EQ(b.sim_dur, 250u);
  EXPECT_EQ(a.tid, b.tid);

  // Truncated files are rejected, not crashed on.
  const std::string trunc = ::testing::TempDir() + "obs_trunc.vwr2trc";
  ASSERT_TRUE(Tracer::get().save(trunc, &why)) << why;
  {
    std::FILE* f = std::fopen(trunc.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    ASSERT_EQ(std::fclose(f), 0);
    ASSERT_EQ(truncate(trunc.c_str(), size - 7), 0);
  }
  Capture bad;
  EXPECT_FALSE(load_capture(trunc, &bad, &why));
  std::remove(trunc.c_str());
}

TEST(ObsTrace, ChromeJsonCarriesSpansInstantsAndFlows) {
  ObsScope scope(false, true);
  std::thread t([] {
    complete("test.cj_span", window_id(2, 0), now_ns() - 1000, 1000, 5);
    instant("test.cj_instant", window_id(2, 0));
    complete("test.cj_span", window_id(2, 0), now_ns(), 500);
  });
  t.join();
  const Capture cap = to_capture(Tracer::get().snapshot());
  std::ostringstream os;
  write_chrome_json(cap, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);  // flow start
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);  // flow finish
  EXPECT_NE(json.find("test.cj_span"), std::string::npos);
}

TEST(ObsTrace, WindowIdPacksSessionAndIndex) {
  EXPECT_EQ(window_session(window_id(0, 0)), 0u);
  EXPECT_EQ(window_index(window_id(0, 0)), 0u);
  EXPECT_EQ(window_session(window_id(41, 1234)), 41u);
  EXPECT_EQ(window_index(window_id(41, 1234)), 1234u);
  EXPECT_NE(window_id(0, 1), window_id(1, 0));
}

TEST(ObsTrace, EightConcurrentSessionsChainAcrossThreads) {
  // The tentpole gate at test scale: 8 producer threads stream windows
  // through a StreamServer with completion lanes while tracing records.
  // Every window's chain must reconstruct completely (push -> slice ->
  // place -> queue -> run -> complete -> deliver), cross >= 3 distinct
  // threads (producer, pool worker, delivery lane), and the summed
  // device.run simulated cycles must equal the sessions' accounted
  // latency_cycles_total -- the tracer and the session counters observe
  // the same simulation.
  ObsScope scope(false, true);
  constexpr unsigned kSessions = 8;
  constexpr unsigned kWindowsPerSession = 3;

  std::vector<stream::SessionStats> session_stats;
  {
    stream::StreamServer::Config cfg;
    cfg.pool.devices = 4;
    cfg.completion_threads = 2;
    for (unsigned d = 0; d < 4; ++d) {
      cfg.pool.device_arch.push_back(
          soc::ArchConfig{.exec_mode = cgra::ExecMode::kTraceCache});
    }
    stream::StreamServer server(cfg);
    std::vector<stream::Session*> sessions;
    for (unsigned i = 0; i < kSessions; ++i) {
      stream::SessionConfig scfg;
      if (i % 2 == 1) scfg.kind = stream::SessionKind::kPipeline;
      sessions.push_back(
          &server.open_session(scfg, [](const stream::WindowResult&) {}));
    }
    std::vector<std::thread> producers;
    for (unsigned i = 0; i < kSessions; ++i) {
      producers.emplace_back([&sessions, i] {
        dsp::RespirationParams p;
        p.breath_hz = 0.2 + 0.03 * i;
        Rng rng(7100 + i);
        const auto signal = dsp::respiration_q16_15(
            kWindowsPerSession * app::kWindow, p, rng);
        for (std::size_t off = 0; off < signal.size(); off += 256) {
          const std::size_t take =
              std::min<std::size_t>(256, signal.size() - off);
          sessions[i]->push(
              std::span<const std::int32_t>(signal).subspan(off, take));
        }
      });
    }
    for (auto& t : producers) t.join();
    server.finish();
    session_stats = server.peek_sessions();
  }

  const Capture cap = to_capture(Tracer::get().snapshot());
  EXPECT_EQ(cap.dropped, 0u);
  const std::vector<WindowChain> chains = analyze_windows(cap);
  ASSERT_EQ(chains.size(),
            std::size_t{kSessions} * kWindowsPerSession);

  std::set<std::uint64_t> sessions_seen;
  std::uint64_t traced_run_cycles = 0;
  for (const WindowChain& c : chains) {
    EXPECT_TRUE(c.complete())
        << "window " << c.window << ": push=" << c.has_push
        << " slice=" << c.has_slice << " place=" << c.has_place
        << " queue=" << c.has_queue << " run=" << c.has_run
        << " complete=" << c.has_complete << " deliver=" << c.has_deliver;
    EXPECT_GE(c.distinct_tids, 3u) << "window " << c.window;
    sessions_seen.insert(window_session(c.window));
    traced_run_cycles += c.run_cycles;
  }
  EXPECT_EQ(sessions_seen.size(), kSessions);

  std::uint64_t accounted_cycles = 0;
  for (const auto& s : session_stats) {
    accounted_cycles += s.latency_cycles_total;
  }
  EXPECT_EQ(traced_run_cycles, accounted_cycles);
}

} // namespace
} // namespace vwr2a::obs
