// Memory structures, bus and DMA models: port rules, ranges, strides,
// timing formulas, bank gating, configuration-memory accounting.

#include <gtest/gtest.h>

#include "bus/ahb.hpp"
#include "common/status.hpp"
#include "dma/dma.hpp"
#include "energy/meter.hpp"
#include "mem/config_mem.hpp"
#include "mem/regfile.hpp"
#include "mem/spm.hpp"
#include "mem/sram.hpp"
#include "mem/srf.hpp"
#include "mem/vwr.hpp"

namespace vwr2a::mem {
namespace {

TEST(Vwr, WordReadWriteAndSliceView) {
  energy::EnergyMeter m;
  Vwr v("t", m);
  v.begin_cycle();
  v.write_word(2, 5, 77);
  EXPECT_EQ(v.peek(2, 5), 77u);
  v.begin_cycle();
  EXPECT_EQ(v.read_word(2, 5), 77u);
  EXPECT_THROW(v.read_word(4, 0), RangeError);
  EXPECT_THROW(v.read_word(0, 32), RangeError);
}

TEST(Vwr, RowWriteAfterWordWriteThrows) {
  energy::EnergyMeter m;
  Vwr v("t", m);
  v.begin_cycle();
  v.write_word(0, 0, 1);
  EXPECT_THROW(v.write_row(Vwr::Row{}), StructuralHazard);
}

TEST(Vwr, TwoRowWritesThrow) {
  energy::EnergyMeter m;
  Vwr v("t", m);
  v.begin_cycle();
  v.write_row(Vwr::Row{});
  EXPECT_THROW(v.write_row(Vwr::Row{}), StructuralHazard);
}

TEST(Vwr, SliceWritesFromAllRcsSameCycleOk) {
  energy::EnergyMeter m;
  Vwr v("t", m);
  v.begin_cycle();
  for (unsigned r = 0; r < 4; ++r) v.write_word(r, 3, r);
  for (unsigned r = 0; r < 4; ++r) EXPECT_EQ(v.peek(r, 3), r);
}

TEST(Spm, PerColumnPortsAreIndependent) {
  energy::EnergyMeter m;
  Spm spm(m);
  spm.begin_cycle();
  spm.read_row(0, 3);
  spm.read_row(1, 3);  // other column, same cycle: fine
  EXPECT_THROW(spm.read_row(0, 4), StructuralHazard);
}

TEST(Spm, SystemSideIndependentOfArraySide) {
  energy::EnergyMeter m;
  Spm spm(m);
  spm.begin_cycle();
  spm.read_row(0, 0);
  spm.write_word_system(5, 99);  // DMA port, same cycle: fine
  EXPECT_EQ(spm.peek(5), 99u);
}

TEST(Spm, RangeChecks) {
  energy::EnergyMeter m;
  Spm spm(m);
  spm.begin_cycle();
  EXPECT_THROW(spm.read_row(0, arch::kSpmRows), RangeError);
  EXPECT_THROW(spm.write_word_system(arch::kSpmWords, 0), RangeError);
}

TEST(Srf, OneAddressPerCycle) {
  energy::EnergyMeter m;
  Srf s(m);
  s.begin_cycle();
  s.read(3);
  s.read(3);  // same-address broadcast
  EXPECT_THROW(s.read(4), StructuralHazard);
  s.begin_cycle();
  s.write(1, 5);
  EXPECT_THROW(s.read(1), StructuralHazard);  // read+write same cycle
}

TEST(Sram, BankGatingBlocksAccess) {
  energy::EnergyMeter m;
  SystemSram sram(m);
  const unsigned bank1_word = arch::kSramBytes / 4 / arch::kSramBanks + 1;
  sram.write(bank1_word, 7);
  sram.set_bank_gated(1, true);
  EXPECT_THROW(sram.read(bank1_word), HostError);
  sram.set_bank_gated(1, false);
  EXPECT_EQ(sram.read(bank1_word), 7u);
}

TEST(ConfigMem, LoadCostMatchesImage) {
  energy::EnergyMeter m;
  ConfigMem cm(m);
  isa::KernelImage img;
  img.name = "k";
  img.columns = isa::ColumnSet::kCol0;
  std::array<std::uint32_t, arch::kSlotsPerColumn> line{};
  for (int i = 0; i < 10; ++i) img.program[0].append_line(line);
  const unsigned id = cm.add_kernel(img);
  EXPECT_EQ(cm.charge_load(id), 10u);
  EXPECT_EQ(m.count(energy::Event::kConfigWord), 10u * arch::kSlotsPerColumn);
  EXPECT_THROW(cm.kernel(99), HostError);
}

} // namespace
} // namespace vwr2a::mem

namespace vwr2a::dma {
namespace {

struct DmaRig {
  energy::EnergyMeter m;
  mem::Spm spm{m};
  mem::SystemSram sram{m};
  bus::AhbBus ahb{sram, m};
  Dma dma{spm, ahb, m};
};

TEST(Dma, ContiguousAndStridedTransfers) {
  DmaRig r;
  for (unsigned i = 0; i < 64; ++i) r.sram.poke(i, 100 + i);
  r.dma.transfer({Dir::kSysToSpm, 0, 0, 64, 1, 1});
  for (unsigned i = 0; i < 64; ++i) EXPECT_EQ(r.spm.peek(i), 100 + i);

  // Deinterleave: every second word.
  r.dma.transfer({Dir::kSysToSpm, 0, 200, 32, 2, 1});
  for (unsigned i = 0; i < 32; ++i) EXPECT_EQ(r.spm.peek(200 + i), 100 + 2 * i);
}

TEST(Dma, NegativeStrideReverses) {
  DmaRig r;
  for (unsigned i = 0; i < 16; ++i) r.sram.poke(i, i);
  r.dma.transfer({Dir::kSysToSpm, 15, 0, 16, -1, 1});
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(r.spm.peek(i), 15 - i);
}

TEST(Dma, SpmToSysScatter) {
  DmaRig r;
  for (unsigned i = 0; i < 8; ++i) r.spm.poke(i, 50 + i);
  r.dma.transfer({Dir::kSpmToSys, 100, 0, 8, 4, 1});
  for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(r.sram.peek(100 + 4 * i), 50 + i);
}

TEST(Dma, CycleFormula) {
  DmaRig r;
  for (unsigned i = 0; i < 40; ++i) r.sram.poke(i, i);
  // setup + ceil(40/16)*burst_setup + 40*beat = 8 + 3*2 + 40 = 54.
  EXPECT_EQ(r.dma.transfer({Dir::kSysToSpm, 0, 0, 40, 1, 1}), 54u);
  EXPECT_EQ(r.dma.total_beats(), 40u);
}

TEST(Dma, EmptyAndOutOfRangeThrow) {
  DmaRig r;
  EXPECT_THROW(r.dma.transfer({Dir::kSysToSpm, 0, 0, 0, 1, 1}), HostError);
  EXPECT_THROW(r.dma.transfer({Dir::kSysToSpm, 0, arch::kSpmWords - 1, 4, 1, 1}),
               RangeError);
}

TEST(Bus, BeatsAndEnergyAccounted) {
  DmaRig r;
  for (unsigned i = 0; i < 8; ++i) r.sram.poke(i, i);
  r.dma.transfer({Dir::kSysToSpm, 0, 0, 8, 1, 1});
  EXPECT_EQ(r.ahb.beats(), 8u);
  EXPECT_EQ(r.m.count(energy::Event::kBusBeat), 8u);
  EXPECT_EQ(r.m.count(energy::Event::kSramRead), 8u);
  EXPECT_EQ(r.m.count(energy::Event::kSpmWordWrite), 8u);
}

} // namespace
} // namespace vwr2a::dma
