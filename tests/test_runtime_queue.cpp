// Runtime job-queue stress: a thousand-plus small jobs through a pool whose
// worker count does not match its device count, error propagation through
// futures, and drain-on-destruction (no lost futures).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "dsp/reference.hpp"
#include "dsp/signal.hpp"
#include "runtime/pool.hpp"

namespace vwr2a::runtime {
namespace {

TEST(RuntimeQueueStress, ThousandSmallJobsNoLostFutures) {
  constexpr unsigned kJobs = 1024;
  constexpr unsigned kDistinctInputs = 16;
  constexpr unsigned kN = 64;

  Rng rng(42);
  const auto taps_vec = dsp::fir11_lowpass_q15();
  const auto taps = make_buffer(taps_vec);
  std::vector<std::vector<std::int32_t>> inputs(kDistinctInputs);
  std::vector<SharedBuffer> buffers(kDistinctInputs);
  std::vector<std::vector<std::int32_t>> golden(kDistinctInputs);
  for (unsigned i = 0; i < kDistinctInputs; ++i) {
    inputs[i].resize(kN);
    for (auto& v : inputs[i]) v = fx::to_q16_15(rng.next_range(-0.9, 0.9));
    buffers[i] = make_buffer(inputs[i]);
    golden[i] = dsp::fir_fx(inputs[i], taps_vec);
  }

  DevicePool::Config cfg;
  cfg.devices = 4;
  cfg.workers = 3;  // deliberately != devices
  cfg.max_batch = 8;
  DevicePool pool(cfg);

  std::vector<JobHandle> handles;
  handles.reserve(kJobs);
  // Mix single submits and batches to exercise both enqueue paths.
  for (unsigned j = 0; j < kJobs;) {
    if (j % 128 == 0) {
      handles.push_back(
          pool.submit(Job{FirJob{kN, taps, buffers[j % kDistinctInputs]},
                          std::to_string(j)}));
      ++j;
    } else {
      std::vector<Job> batch;
      const unsigned take = std::min(127u, kJobs - j);
      for (unsigned b = 0; b < take; ++b, ++j) {
        batch.push_back(Job{FirJob{kN, taps, buffers[j % kDistinctInputs]},
                            std::to_string(j)});
      }
      for (auto& h : pool.submit_batch(std::move(batch))) {
        handles.push_back(std::move(h));
      }
    }
  }
  ASSERT_EQ(handles.size(), kJobs);

  std::vector<bool> seen(kJobs, false);
  for (unsigned j = 0; j < kJobs; ++j) {
    ASSERT_TRUE(handles[j].valid()) << "job " << j;
    JobResult r = handles[j].get();  // throws if the job failed
    EXPECT_EQ(r.seq, j);
    EXPECT_EQ(r.device, j % 4);
    EXPECT_EQ(r.tag, std::to_string(j));
    EXPECT_EQ(r.output, golden[j % kDistinctInputs]) << "job " << j;
    ASSERT_LT(r.seq, kJobs);
    EXPECT_FALSE(seen[r.seq]);
    seen[r.seq] = true;
  }

  const FleetStats s = pool.stats();
  EXPECT_EQ(s.jobs_completed, kJobs);
  EXPECT_EQ(s.jobs_failed, 0u);
}

TEST(RuntimeQueue, JobErrorsPropagateThroughFutures) {
  DevicePool pool;

  // Malformed jobs: n == 0, and an input/n mismatch.
  JobHandle bad1 = pool.submit(Job{
      FirJob{0, make_buffer(std::vector<std::int32_t>{}),
             make_buffer(std::vector<std::int32_t>{})},
      ""});
  JobHandle bad2 = pool.submit(
      Job{CfftJob{256, make_buffer(std::vector<std::int32_t>(100))}, ""});
  EXPECT_THROW(bad1.get(), HostError);
  EXPECT_THROW(bad2.get(), HostError);

  // The pool keeps serving good jobs afterwards.
  Rng rng(3);
  std::vector<std::int32_t> x(64);
  for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.9, 0.9));
  const auto taps = dsp::fir11_lowpass_q15();
  JobHandle ok =
      pool.submit(Job{FirJob{64, make_buffer(taps), make_buffer(x)}, ""});
  EXPECT_EQ(ok.get().output, dsp::fir_fx(x, taps));

  const FleetStats s = pool.stats();
  EXPECT_EQ(s.jobs_completed, 1u);
  EXPECT_EQ(s.jobs_failed, 2u);
}

TEST(RuntimeQueue, DestructorDrainsPendingJobs) {
  Rng rng(9);
  std::vector<std::int32_t> x(64);
  for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.9, 0.9));
  const auto taps = dsp::fir11_lowpass_q15();
  const auto golden = dsp::fir_fx(x, taps);

  std::vector<JobHandle> handles;
  {
    DevicePool::Config cfg;
    cfg.devices = 2;
    cfg.workers = 1;
    DevicePool pool(cfg);
    std::vector<Job> jobs(
        64, Job{FirJob{64, make_buffer(taps), make_buffer(x)}, ""});
    handles = pool.submit_batch(std::move(jobs));
    // Pool destroyed here with most jobs still queued.
  }
  for (auto& h : handles) {
    ASSERT_TRUE(h.valid());
    EXPECT_EQ(h.get().output, golden);  // fulfilled, not broken_promise
  }
}

/// Reproducible mixed-catalog fuzz jobs: random family, size and pin.
std::vector<Job> make_fuzz_jobs(unsigned count, unsigned devices,
                                unsigned seed) {
  Rng rng(seed);
  const auto taps = make_buffer(dsp::fir11_lowpass_q15());
  auto random_buf = [&rng](unsigned n, double lim) {
    std::vector<std::int32_t> x(n);
    for (auto& v : x) v = fx::to_q16_15(rng.next_range(-lim, lim));
    return make_buffer(std::move(x));
  };
  std::vector<Job> jobs;
  jobs.reserve(count);
  for (unsigned j = 0; j < count; ++j) {
    Job job;
    switch (rng.next_below(6)) {
      case 0: {
        const unsigned n = 64 * (1 + rng.next_below(4));
        job.work = FirJob{n, taps, random_buf(n, 0.9)};
        break;
      }
      case 1:
        job.work = CfftJob{256, random_buf(512, 0.4)};
        break;
      case 2:
        job.work = RfftJob{512, random_buf(512, 0.4)};
        break;
      case 3:
        job.work = IfftJob{256, random_buf(512, 0.4)};
        break;
      case 4: {
        const unsigned n = 128 * (1 + rng.next_below(4));
        job.work = ReduceJob{static_cast<ReduceOp>(rng.next_below(4)), n,
                             random_buf(n, 0.9)};
        break;
      }
      default: {
        dsp::RespirationParams p;
        Rng sig(3000 + j);
        const unsigned n = 128 * (1 + rng.next_below(3));
        job.work = DelineationJob{n, fx::to_q16_15(0.1),
                                  make_buffer(dsp::respiration_q16_15(n, p, sig))};
        break;
      }
    }
    job.tag = "fuzz#" + std::to_string(j);
    job.pin = static_cast<int>(rng.next_below(devices + 1)) - 1;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(RuntimeQueueStress, MixedJobTypeFuzz) {
  // Randomized mixed-catalog stress: random variant, size and pin per job.
  // Every future must resolve (all inputs are valid by construction), tags
  // must round-trip, and pinned jobs must land on their device.
  constexpr unsigned kJobs = 96;
  constexpr unsigned kDevices = 3;
  Rng rng(2024);

  DevicePool::Config cfg;
  cfg.devices = kDevices;
  cfg.workers = 2;  // deliberately != devices
  cfg.max_batch = 4;
  cfg.device_arch = {soc::ArchConfig{}, soc::ArchConfig{.vwr_count = 4},
                     soc::ArchConfig{.simd_width = 16}};
  DevicePool pool(cfg);

  std::vector<Job> jobs = make_fuzz_jobs(kJobs, kDevices, 2024);

  // Mix both enqueue paths, as the original stress does.
  std::vector<JobHandle> handles;
  handles.reserve(kJobs);
  for (unsigned j = 0; j < kJobs;) {
    if (rng.next_below(2) == 0) {
      handles.push_back(pool.submit(jobs[j]));
      ++j;
    } else {
      const unsigned take = std::min(1 + rng.next_below(16), kJobs - j);
      std::vector<Job> batch(jobs.begin() + j, jobs.begin() + j + take);
      for (auto& h : pool.submit_batch(std::move(batch))) {
        handles.push_back(std::move(h));
      }
      j += take;
    }
  }
  ASSERT_EQ(handles.size(), kJobs);

  for (unsigned j = 0; j < kJobs; ++j) {
    ASSERT_TRUE(handles[j].valid()) << "job " << j;
    JobResult r = handles[j].get();  // throws if the job failed
    EXPECT_EQ(r.seq, j);
    EXPECT_EQ(r.tag, "fuzz#" + std::to_string(j));
    EXPECT_FALSE(r.output.empty() &&
                 !std::holds_alternative<DelineationJob>(jobs[j].work))
        << "job " << j;
    if (jobs[j].pin >= 0) {
      EXPECT_EQ(r.device, static_cast<unsigned>(jobs[j].pin)) << "job " << j;
    }
  }
  const FleetStats s = pool.stats();
  EXPECT_EQ(s.jobs_completed, kJobs);
  EXPECT_EQ(s.jobs_failed, 0u);
}

/// The mixed-fleet fuzz, differentially: the same randomized job set on the
/// same heterogeneous fleet, once interpreted and once trace-cached, must be
/// bit-identical in outputs and exactly equal in per-job cycles and energy.
TEST(RuntimeQueueStress, MixedFleetFuzzBothExecModes) {
  constexpr unsigned kJobs = 96;
  constexpr unsigned kDevices = 3;

  auto run_mode = [](cgra::ExecMode mode) {
    DevicePool::Config cfg;
    cfg.devices = kDevices;
    cfg.workers = 2;
    cfg.max_batch = 4;
    cfg.device_arch = {soc::ArchConfig{.exec_mode = mode},
                       soc::ArchConfig{.vwr_count = 4, .exec_mode = mode},
                       soc::ArchConfig{.simd_width = 16, .exec_mode = mode}};
    DevicePool pool(cfg);
    std::vector<JobResult> rs;
    for (auto& h : pool.submit_batch(make_fuzz_jobs(kJobs, kDevices, 777))) {
      rs.push_back(h.get());
    }
    const FleetStats s = pool.stats();
    EXPECT_EQ(s.jobs_failed, 0u);
    return std::make_pair(std::move(rs), s);
  };

  const auto [ri, si] = run_mode(cgra::ExecMode::kInterpret);
  const auto [rt, st] = run_mode(cgra::ExecMode::kTraceCache);
  ASSERT_EQ(ri.size(), rt.size());
  for (unsigned j = 0; j < ri.size(); ++j) {
    SCOPED_TRACE("job " + ri[j].tag);
    EXPECT_EQ(ri[j].device, rt[j].device);
    EXPECT_EQ(ri[j].output, rt[j].output);
    EXPECT_EQ(ri[j].launches, rt[j].launches);
    EXPECT_EQ(ri[j].cost.cpu_cycles, rt[j].cost.cpu_cycles);
    EXPECT_EQ(ri[j].cost.vwr2a_cycles, rt[j].cost.vwr2a_cycles);
    EXPECT_EQ(ri[j].cost.accel_cycles, rt[j].cost.accel_cycles);
    EXPECT_EQ(ri[j].cost.sys_pj, rt[j].cost.sys_pj);
    EXPECT_EQ(ri[j].cost.vwr2a_pj, rt[j].cost.vwr2a_pj);
    EXPECT_EQ(ri[j].cost.accel_pj, rt[j].cost.accel_pj);
  }
  // Fleet-level totals (makespan, energy, stagings) must agree exactly too.
  EXPECT_EQ(si.fleet_makespan, st.fleet_makespan);
  EXPECT_EQ(si.total_device_cycles, st.total_device_cycles);
  EXPECT_EQ(si.total_pj, st.total_pj);
  EXPECT_EQ(si.stagings, st.stagings);
}

TEST(RuntimeQueue, InvalidHandleGetThrowsClearError) {
  // Default-constructed handle.
  JobHandle empty;
  EXPECT_THROW(empty.get(), HostError);
  try {
    empty.get();
    FAIL() << "expected HostError";
  } catch (const HostError& e) {
    EXPECT_NE(std::string(e.what()).find("JobHandle"), std::string::npos);
  }

  // Consumed and moved-from handles degrade the same way.
  DevicePool pool;
  Rng rng(3);
  std::vector<std::int32_t> x(64);
  for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.9, 0.9));
  const auto taps = dsp::fir11_lowpass_q15();
  JobHandle h =
      pool.submit(Job{FirJob{64, make_buffer(taps), make_buffer(x)}, ""});
  (void)h.get();
  EXPECT_FALSE(h.valid());
  EXPECT_THROW(h.get(), HostError);

  JobHandle h2 =
      pool.submit(Job{FirJob{64, make_buffer(taps), make_buffer(x)}, ""});
  JobHandle moved = std::move(h2);
  EXPECT_THROW(h2.get(), HostError);
  (void)moved.get();
}

TEST(RuntimeQueue, IdlePoolIsWellBehaved) {
  DevicePool live;
  live.wait_idle();  // idle pool: wait_idle returns immediately
  const FleetStats s = live.stats();
  EXPECT_EQ(s.jobs_completed, 0u);
  EXPECT_EQ(s.fleet_makespan, 0u);
  EXPECT_EQ(s.jobs_per_sim_second(), 0.0);
}

} // namespace
} // namespace vwr2a::runtime
