// Trace-cache identity: ExecMode::kTraceCache must be indistinguishable
// from the interpreter -- bit-identical architectural state, exactly equal
// cycle counts, exactly equal per-event energy counts -- on every program
// that runs, and must surface the same documented faults on every program
// that does not. The random-program differential fuzz is the strongest pin:
// any divergence between compile_trace()/replay and Column::step() shows up
// as a state or meter mismatch.

#include <gtest/gtest.h>

#include <vector>

#include "bus/ahb.hpp"
#include "casm/builder.hpp"
#include "casm/factories.hpp"
#include "cgra/tracecache.hpp"
#include "cgra/vwr2a.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "energy/meter.hpp"
#include "mem/sram.hpp"
#include "soc/platform.hpp"

namespace vwr2a {
namespace {

using namespace casm;
using cgra::ExecMode;

/// A standalone VWR2A rig with a selectable execution engine.
struct Rig {
  energy::EnergyMeter sys_meter;
  mem::SystemSram sram{sys_meter};
  bus::AhbBus ahb{sram, sys_meter};
  cgra::Vwr2a acc{ahb};

  explicit Rig(ExecMode mode) { acc.set_exec_mode(mode, "test"); }

  /// Seeds SPM, SRFs, VWRs and LCU-visible SRF params deterministically.
  void seed(Rng rng) {
    for (unsigned w = 0; w < arch::kSpmWords; ++w) {
      acc.spm().poke(w, rng.next_u32());
    }
    for (unsigned c = 0; c < arch::kNumColumns; ++c) {
      for (unsigned i = 0; i < arch::kSrfEntries; ++i) {
        acc.column(c).srf().poke(i, rng.next_below(1u << 16));
      }
      for (unsigned v = 0; v < arch::kVwrsPerColumn; ++v) {
        for (unsigned s = 0; s < arch::kRcsPerColumn; ++s) {
          for (unsigned i = 0; i < arch::kSliceWords; ++i) {
            acc.column(c).vwr(static_cast<VwrSel>(v)).poke(s, i, rng.next_u32());
          }
        }
      }
    }
  }
};

/// Full observable-state comparison of the two rigs.
void expect_identical(Rig& a, Rig& b, const std::string& what) {
  EXPECT_EQ(a.acc.cycles(), b.acc.cycles()) << what;
  for (unsigned e = 0; e < static_cast<unsigned>(energy::Event::kCount); ++e) {
    EXPECT_EQ(a.acc.meter().count(static_cast<energy::Event>(e)),
              b.acc.meter().count(static_cast<energy::Event>(e)))
        << what << " event " << energy::to_string(static_cast<energy::Event>(e));
  }
  EXPECT_EQ(a.acc.meter().total_pj(), b.acc.meter().total_pj()) << what;
  for (unsigned w = 0; w < arch::kSpmWords; ++w) {
    ASSERT_EQ(a.acc.spm().peek(w), b.acc.spm().peek(w))
        << what << " SPM word " << w;
  }
  for (unsigned c = 0; c < arch::kNumColumns; ++c) {
    const cgra::Column& ca = a.acc.column(c);
    const cgra::Column& cb = b.acc.column(c);
    for (unsigned i = 0; i < arch::kSrfEntries; ++i) {
      ASSERT_EQ(ca.srf().peek(i), cb.srf().peek(i))
          << what << " col " << c << " SRF " << i;
    }
    for (unsigned v = 0; v < arch::kVwrsPerColumn; ++v) {
      for (unsigned s = 0; s < arch::kRcsPerColumn; ++s) {
        for (unsigned i = 0; i < arch::kSliceWords; ++i) {
          ASSERT_EQ(ca.vwr(static_cast<VwrSel>(v)).peek(s, i),
                    cb.vwr(static_cast<VwrSel>(v)).peek(s, i))
              << what << " col " << c << " VWR " << v;
        }
      }
    }
    for (unsigned r = 0; r < arch::kLcuRegs; ++r) {
      ASSERT_EQ(ca.lcu_reg(r), cb.lcu_reg(r)) << what << " col " << c;
    }
    for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
      ASSERT_EQ(ca.rc_state(r).rf, cb.rc_state(r).rf) << what << " col " << c;
      ASSERT_EQ(ca.rc_state(r).out, cb.rc_state(r).out) << what << " col " << c;
    }
    ASSERT_EQ(ca.mxcu_index(), cb.mxcu_index()) << what;
    ASSERT_EQ(ca.executed_cycles(), cb.executed_cycles()) << what;
  }
}

// --- random-program differential fuzz ---------------------------------------

isa::RcInstr random_rc(Rng& rng) {
  isa::RcInstr i;
  i.op = static_cast<isa::RcOp>(
      rng.next_below(static_cast<unsigned>(isa::RcOp::kCount)));
  i.src_a = static_cast<isa::RcSrc>(
      rng.next_below(static_cast<unsigned>(isa::RcSrc::kCount)));
  i.src_b = static_cast<isa::RcSrc>(
      rng.next_below(static_cast<unsigned>(isa::RcSrc::kCount)));
  i.dst = static_cast<isa::RcDst>(
      rng.next_below(static_cast<unsigned>(isa::RcDst::kCount)));
  i.srf = static_cast<std::uint8_t>(rng.next_below(8));
  i.imm = static_cast<std::int8_t>(rng.next_u32());
  return i;
}

isa::LsuInstr random_lsu(Rng& rng) {
  isa::LsuInstr i;
  switch (rng.next_below(7)) {
    case 0: return i;  // nop
    case 1: return lsu_ld_vwr(static_cast<VwrSel>(rng.next_below(3)),
                              rng.next_below(arch::kSpmRows));
    case 2: return lsu_st_vwr(static_cast<VwrSel>(rng.next_below(3)),
                              rng.next_below(arch::kSpmRows));
    case 3: return lsu_ld_srf(static_cast<std::uint8_t>(rng.next_below(8)),
                              rng.next_below(arch::kSpmWords));
    case 4: return lsu_st_srf(static_cast<std::uint8_t>(rng.next_below(8)),
                              rng.next_below(arch::kSpmWords));
    case 5: return lsu_shuf(static_cast<isa::ShufMode>(rng.next_below(8)));
    default:
      // SRF-based addressing: data-dependent rows, range-checked at replay.
      return lsu_ld_vwr_srf(static_cast<VwrSel>(rng.next_below(3)),
                            static_cast<std::uint8_t>(rng.next_below(8)),
                            static_cast<int>(rng.next_below(8)));
  }
}

isa::MxcuInstr random_mxcu(Rng& rng) {
  isa::MxcuInstr i;
  i.op = static_cast<isa::MxcuOp>(
      rng.next_below(static_cast<unsigned>(isa::MxcuOp::kCount)));
  i.srf = static_cast<std::uint8_t>(rng.next_below(8));
  i.imm = static_cast<std::int16_t>(static_cast<int>(rng.next_below(128)) - 64);
  return i;
}

/// Random LCU op at line `pc` of `len` lines (line 0 is a prologue that
/// seeds r3 with a small trip count). Register-writing ops stay off r3 and
/// at most one DBNZ (always on r3, always backward) is emitted per program,
/// so every generated program terminates in both engines.
isa::LcuInstr random_lcu(Rng& rng, unsigned pc, unsigned len, bool& used_dbnz) {
  isa::LcuInstr i;
  switch (rng.next_below(8)) {
    case 0:
      return lcu_nop();
    case 1:
      return lcu_set(static_cast<std::uint8_t>(rng.next_below(3)),
                     static_cast<int>(rng.next_below(64)) - 32);
    case 2:
      return lcu_add(static_cast<std::uint8_t>(rng.next_below(3)),
                     static_cast<int>(rng.next_below(16)) - 8);
    case 3:
      i.op = isa::LcuOp::kMvSrf;
      i.rd = static_cast<std::uint8_t>(rng.next_below(3));
      i.srf = static_cast<std::uint8_t>(rng.next_below(8));
      return i;
    case 4:
      i.op = isa::LcuOp::kStSrf;
      i.ra = static_cast<std::uint8_t>(rng.next_below(4));
      i.srf = static_cast<std::uint8_t>(rng.next_below(8));
      return i;
    case 5: {  // forward conditional skip
      i.op = static_cast<isa::LcuOp>(
          static_cast<unsigned>(isa::LcuOp::kBeq) + rng.next_below(8));
      i.ra = static_cast<std::uint8_t>(rng.next_below(4));
      i.rb = static_cast<std::uint8_t>(rng.next_below(4));
      i.imm = static_cast<std::int16_t>(static_cast<int>(rng.next_below(8)) - 4);
      i.target = static_cast<std::uint8_t>(
          pc + 1 + rng.next_below(len + 1 - pc));  // (pc, len+1] incl. EXIT
      return i;
    }
    case 6: {  // SRF zero test, forward
      i.op = rng.next_below(2) ? isa::LcuOp::kBsrfZ : isa::LcuOp::kBsrfNz;
      i.srf = static_cast<std::uint8_t>(rng.next_below(8));
      i.target =
          static_cast<std::uint8_t>(pc + 1 + rng.next_below(len + 1 - pc));
      return i;
    }
    default: {  // tight backward DBNZ loop over the previous line
      if (used_dbnz || pc < 2) return lcu_nop();
      used_dbnz = true;
      i.op = isa::LcuOp::kDbnz;
      i.rd = 3;  // seeded by the prologue, untouched elsewhere
      i.target = static_cast<std::uint8_t>(pc - 1);
      return i;
    }
  }
}

/// One random VLIW program, terminating by construction (bounded DBNZ,
/// forward-only conditional skips). The RC source space includes kRcCross
/// and the LSU rows span the whole SPM, so two-column trials exercise the
/// lockstep (cross-operand) tier, the sync schedule (static overlaps) and
/// the post-hoc dynamic masks alike.
isa::ColumnProgram random_program(Rng& rng, unsigned len) {
  ProgramBuilder pb;
  // Prologue: bound every DBNZ trip count.
  pb.line().lcu(lcu_set(3, 1 + static_cast<int>(rng.next_below(4)))).emit();
  bool used_dbnz = false;
  for (unsigned l = 1; l <= len; ++l) {
    auto line = pb.line();
    if (rng.next_below(2)) line.lsu(random_lsu(rng));
    if (rng.next_below(2)) line.mxcu(random_mxcu(rng));
    if (rng.next_below(2)) line.lcu(random_lcu(rng, l, len, used_dbnz));
    for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
      if (rng.next_below(2)) line.rc(r, random_rc(rng));
    }
    line.emit();
  }
  pb.line().lcu(lcu_exit()).emit();
  return pb.build();
}

TEST(TraceCacheFuzz, RandomProgramsBitCycleEnergyIdentical) {
  Rng rng(0x7AC3);
  unsigned completed = 0, faulted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t data_seed = rng.next_u64();
    const isa::ColumnProgram prog = random_program(rng, 2 + rng.next_below(12));
    // Two-column trials exercise the decoupled replay + conflict detector;
    // single-column trials the plain block replay.
    const bool two_cols = rng.next_below(2) == 1;
    const isa::KernelImage img =
        two_cols ? make_kernel2("fuzz2", prog, prog) : make_kernel("fuzz", 0, prog);

    Rig ri(ExecMode::kInterpret);
    Rig rt(ExecMode::kTraceCache);
    ri.seed(Rng(data_seed));
    rt.seed(Rng(data_seed));
    // Bound every DBNZ: r3 holds a small count (host-style SRF write would
    // disturb state symmetrically anyway; poke is free and identical).
    for (unsigned c = 0; c < arch::kNumColumns; ++c) {
      ri.acc.column(c).srf().poke(3, 3);
      rt.acc.column(c).srf().poke(3, 3);
    }

    const unsigned ki = ri.acc.register_kernel(img);
    const unsigned kt = rt.acc.register_kernel(img);
    int outcome_i = 0, outcome_t = 0;
    std::string err_i, err_t;
    try {
      ri.acc.run_kernel(ki);
    } catch (const StructuralHazard& e) {
      outcome_i = 1;
      err_i = e.what();
    } catch (const SimError& e) {
      outcome_i = 2;
      err_i = e.what();
    }
    try {
      rt.acc.run_kernel(kt);
    } catch (const StructuralHazard& e) {
      outcome_t = 1;
      err_t = e.what();
    } catch (const SimError& e) {
      outcome_t = 2;
      err_t = e.what();
    }
    ASSERT_EQ(outcome_i, outcome_t) << "trial " << trial << ": interpreter '"
                                    << err_i << "' vs trace '" << err_t << "'";
    ASSERT_EQ(err_i, err_t) << "trial " << trial;
    if (outcome_i == 0) {
      ++completed;
      expect_identical(ri, rt, "trial " + std::to_string(trial));
      if (::testing::Test::HasFatalFailure()) return;
    } else {
      ++faulted;
      // Faulting replays fall back to the interpreter, so even the partial
      // state and partial energy of the fault path match exactly.
      expect_identical(ri, rt, "faulted trial " + std::to_string(trial));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  // The generator must exercise both the clean path and the fault path
  // (dense random lines collide on the single-ported SRF frequently, so
  // faults dominate -- exactly the population that pins the fallback).
  EXPECT_GT(completed, 15u);
  EXPECT_GT(faulted, 100u);
}

// --- directed coverage -------------------------------------------------------

/// A kernel whose LCU trip count is data-dependent: the host parameter in
/// SRF0 feeds the DBNZ counter (fused self-loop replay must read it at
/// runtime, not bake it in).
isa::ColumnProgram counted_accumulate_program() {
  ProgramBuilder pb;
  pb.line().lcu(lcu_mv_srf(0, 0)).emit();  // r0 = SRF0 (trip count)
  pb.line().rc_all(rc_mv(isa::RcDst::kR0, isa::RcSrc::kZero)).emit();
  Label loop = pb.make_label();
  pb.bind(loop);
  pb.line()
      .rc_all(rc_add(isa::RcDst::kR0, isa::RcSrc::kR0, isa::RcSrc::kVwrA))
      .mxcu(mxcu_add_idx(1))
      .lcu(lcu_dbnz(0), loop)
      .emit();
  pb.line().rc_all(rc_mv(isa::RcDst::kVwrC, isa::RcSrc::kR0)).emit();
  pb.line().lcu(lcu_exit()).emit();
  return pb.build();
}

TEST(TraceCache, DataDependentTripCountIsIdentical) {
  for (Word trips : {1u, 2u, 7u, 31u, 97u}) {
    Rig ri(ExecMode::kInterpret);
    Rig rt(ExecMode::kTraceCache);
    ri.seed(Rng(42));
    rt.seed(Rng(42));
    const isa::KernelImage img =
        make_kernel("counted", 0, counted_accumulate_program());
    const unsigned ki = ri.acc.register_kernel(img);
    const unsigned kt = rt.acc.register_kernel(img);
    ri.acc.host_write_srf(0, 0, trips);
    rt.acc.host_write_srf(0, 0, trips);
    const Cycle ci = ri.acc.run_kernel(ki);
    const Cycle ct = rt.acc.run_kernel(kt);
    EXPECT_EQ(ci, ct) << "trips " << trips;
    // Trip count must show in the cycle count (data dependence is real).
    EXPECT_GT(ci, static_cast<Cycle>(trips));
    expect_identical(ri, rt, "trips " + std::to_string(trips));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// Two columns that communicate through the SPM at *statically* known rows:
/// column 0 stores row 40 (immediate address), column 1 loads it a few
/// cycles later. The block dependence analysis sees the overlap at compile
/// time, so the launch replays on the sync schedule -- the conflicting
/// blocks advance in interpreter order from the start, with no rollback.
TEST(TraceCache, StaticSpmFlowReplaysOnSyncSchedule) {
  auto writer = [] {
    ProgramBuilder pb;
    pb.line().rc_all(rc_add(isa::RcDst::kVwrA, isa::RcSrc::kVwrA,
                            isa::RcSrc::kOne)).emit();
    pb.line().lsu(lsu_st_vwr(VwrSel::A, 40)).emit();
    pb.line().emit();  // idle while the partner loads
    pb.line().emit();
    pb.line().lcu(lcu_exit()).emit();
    return pb.build();
  };
  auto reader = [] {
    ProgramBuilder pb;
    pb.line().emit();
    pb.line().emit();
    pb.line().lsu(lsu_ld_vwr(VwrSel::B, 40)).emit();  // sees the new row
    pb.line().rc_all(rc_add(isa::RcDst::kVwrC, isa::RcSrc::kVwrB,
                            isa::RcSrc::kOne)).emit();
    pb.line().lcu(lcu_exit()).emit();
    return pb.build();
  };
  const isa::KernelImage img = make_kernel2("spmflow", writer(), reader());

  // The compiled traces carry the static row masks the plan is built from.
  const auto tw = cgra::compile_trace(writer());
  const auto tr = cgra::compile_trace(reader());
  ASSERT_TRUE(tw->ok && tr->ok);
  EXPECT_EQ(tw->static_writes, 1ull << 40);
  EXPECT_EQ(tr->static_reads, 1ull << 40);
  const cgra::tc::SyncPlan plan = cgra::tc::make_sync_plan(tw.get(), tr.get());
  EXPECT_EQ(plan.mode, cgra::tc::SyncPlan::Mode::kScheduled);
  EXPECT_GT(plan.sync_blocks[0] + plan.sync_blocks[1], 0u);

  Rig ri(ExecMode::kInterpret);
  Rig rt(ExecMode::kTraceCache);
  ri.seed(Rng(77));
  rt.seed(Rng(77));
  const unsigned ki = ri.acc.register_kernel(img);
  const unsigned kt = rt.acc.register_kernel(img);
  ri.acc.run_kernel(ki);
  rt.acc.run_kernel(kt);
  expect_identical(ri, rt, "first launch (sync schedule)");
  EXPECT_EQ(rt.acc.traced_rollbacks(), 0u);
  EXPECT_GT(rt.acc.sync_points(), 0u);
  EXPECT_EQ(rt.acc.interpreted_cycles(), 0u);

  ri.acc.run_kernel(ki);
  rt.acc.run_kernel(kt);
  expect_identical(ri, rt, "second launch (sync schedule)");
  EXPECT_EQ(rt.acc.traced_rollbacks(), 0u);
  EXPECT_EQ(rt.acc.traced_launches(), 2u);
}

/// The same dataflow with a *dynamically* addressed store (SRF-based row):
/// invisible to the static analysis, so the launch free-runs decoupled, the
/// post-hoc mask check catches the overlap, and the rollback ladder reruns
/// in per-cycle lockstep. The hint pins later launches to lockstep until a
/// reload re-evaluates -- and a reload with a non-conflicting row parameter
/// returns the kernel to the decoupled tier.
TEST(TraceCache, DynamicSpmConflictRollsBackAndHintReEvaluates) {
  auto writer = [] {
    ProgramBuilder pb;
    pb.line().rc_all(rc_add(isa::RcDst::kVwrA, isa::RcSrc::kVwrA,
                            isa::RcSrc::kOne)).emit();
    pb.line().lsu(lsu_st_vwr_srf(VwrSel::A, /*base srf=*/4)).emit();
    pb.line().emit();
    pb.line().emit();
    pb.line().lcu(lcu_exit()).emit();
    return pb.build();
  };
  auto reader = [] {
    ProgramBuilder pb;
    pb.line().emit();
    pb.line().emit();
    pb.line().lsu(lsu_ld_vwr(VwrSel::B, 40)).emit();
    pb.line().rc_all(rc_add(isa::RcDst::kVwrC, isa::RcSrc::kVwrB,
                            isa::RcSrc::kOne)).emit();
    pb.line().lcu(lcu_exit()).emit();
    return pb.build();
  };
  const isa::KernelImage img = make_kernel2("dynflow", writer(), reader());
  // A throwaway single-column kernel used to force a reload of the columns.
  ProgramBuilder other;
  other.line().emit();
  other.line().lcu(lcu_exit()).emit();
  const isa::KernelImage evict = make_kernel("evict", 0, other.build());

  Rig ri(ExecMode::kInterpret);
  Rig rt(ExecMode::kTraceCache);
  ri.seed(Rng(78));
  rt.seed(Rng(78));
  const unsigned ki = ri.acc.register_kernel(img);
  const unsigned kt = rt.acc.register_kernel(img);
  const unsigned ei = ri.acc.register_kernel(evict);
  const unsigned et = rt.acc.register_kernel(evict);
  // SRF4 = 40: the dynamic store lands on the row the partner reads.
  ri.acc.host_write_srf(0, 4, 40);
  rt.acc.host_write_srf(0, 4, 40);
  ri.acc.run_kernel(ki);
  rt.acc.run_kernel(kt);
  expect_identical(ri, rt, "dynamic conflict (rollback to lockstep)");
  EXPECT_EQ(rt.acc.traced_rollbacks(), 1u);

  // Still resident: the hint sends the relaunch straight to lockstep.
  ri.acc.run_kernel(ki);
  rt.acc.run_kernel(kt);
  expect_identical(ri, rt, "hinted relaunch (lockstep, no new rollback)");
  EXPECT_EQ(rt.acc.traced_rollbacks(), 1u);

  // Change the row parameter so the store no longer overlaps, and force a
  // reload: the hint is re-evaluated, the relaunch free-runs decoupled, and
  // the post-hoc check passes -- no new rollback, decoupled cycles grow.
  ri.acc.run_kernel(ei);
  rt.acc.run_kernel(et);
  ri.acc.host_write_srf(0, 4, 10);
  rt.acc.host_write_srf(0, 4, 10);
  const std::uint64_t dec_before = rt.acc.replayed_decoupled_cycles();
  ri.acc.run_kernel(ki);
  rt.acc.run_kernel(kt);
  expect_identical(ri, rt, "reload re-evaluates the hint (decoupled again)");
  EXPECT_EQ(rt.acc.traced_rollbacks(), 1u);
  EXPECT_GT(rt.acc.replayed_decoupled_cycles(), dec_before);
}

/// A cross-column POLL at a statically known word: column 0 spins on an SPM
/// word until column 1 writes it non-zero. The immediate addresses put both
/// sides in the static masks, so the spin block and the store block are
/// sync points -- the scheduled replay interleaves them like the
/// interpreter and terminates exactly when it does, with no budget blow-up
/// and no rollback.
TEST(TraceCache, StaticCrossColumnPollRunsOnSyncSchedule) {
  constexpr unsigned kFlagWord = 40 * arch::kVwrWords;  // row 40, word 0
  auto poller = [] {
    ProgramBuilder pb;
    Label spin = pb.make_label();
    pb.bind(spin);
    pb.line().lsu(lsu_ld_srf(1, kFlagWord)).emit();  // SRF1 = SPM[flag]
    isa::LcuInstr b;
    b.op = isa::LcuOp::kBsrfZ;
    b.srf = 1;
    pb.line().lcu(b, spin).emit();                   // while (SRF1 == 0)
    pb.line().rc_all(rc_mv(isa::RcDst::kVwrC, isa::RcSrc::kSrf, 1)).emit();
    pb.line().lcu(lcu_exit()).emit();
    return pb.build();
  };
  auto writer = [] {
    ProgramBuilder pb;
    pb.line().emit();                                // give the poller a spin
    pb.line().emit();
    pb.line().lsu(lsu_st_srf(2, kFlagWord)).emit();  // SPM[flag] = SRF2
    pb.line().lcu(lcu_exit()).emit();
    return pb.build();
  };
  const isa::KernelImage img = make_kernel2("poll", poller(), writer());

  Rig ri(ExecMode::kInterpret);
  Rig rt(ExecMode::kTraceCache);
  for (Rig* r : {&ri, &rt}) {
    r->seed(Rng(88));
    r->acc.spm().poke(kFlagWord, 0);          // flag starts clear
    r->acc.column(1).srf().poke(2, 7);        // the value the writer posts
  }
  const unsigned ki = ri.acc.register_kernel(img);
  const unsigned kt = rt.acc.register_kernel(img);
  ri.acc.run_kernel(ki);
  rt.acc.run_kernel(kt);
  EXPECT_EQ(rt.acc.traced_rollbacks(), 0u);
  EXPECT_GT(rt.acc.sync_points(), 0u);
  expect_identical(ri, rt, "static cross-column poll");

  for (Rig* r : {&ri, &rt}) r->acc.spm().poke(kFlagWord, 0);
  ri.acc.run_kernel(ki);
  rt.acc.run_kernel(kt);
  EXPECT_EQ(rt.acc.traced_rollbacks(), 0u);
  expect_identical(ri, rt, "static cross-column poll, relaunch");
}

/// The same poll through an SRF-based (dynamic) address: invisible to the
/// static analysis, so free-running column 0 alone would never terminate.
/// The decoupled attempt must hit its replay budget, roll back, and rerun
/// in lockstep -- terminating exactly like the interpreter.
TEST(TraceCache, DynamicCrossColumnPollHitsBudgetAndGoesLockstep) {
  constexpr unsigned kFlagWord = 40 * arch::kVwrWords;  // row 40, word 0
  auto poller = [] {
    ProgramBuilder pb;
    pb.line().lsu(lsu_setptr(0, /*base srf=*/4)).emit();  // P0 = SRF4
    Label spin = pb.make_label();
    pb.bind(spin);
    pb.line().lsu(lsu_ld_srf_ptr(1, 0, /*stride=*/0)).emit();  // SRF1 = SPM[P0]
    isa::LcuInstr b;
    b.op = isa::LcuOp::kBsrfZ;
    b.srf = 1;
    pb.line().lcu(b, spin).emit();                   // while (SRF1 == 0)
    pb.line().rc_all(rc_mv(isa::RcDst::kVwrC, isa::RcSrc::kSrf, 1)).emit();
    pb.line().lcu(lcu_exit()).emit();
    return pb.build();
  };
  auto writer = [] {
    ProgramBuilder pb;
    pb.line().emit();
    pb.line().emit();
    pb.line().emit();
    pb.line().lsu(lsu_st_srf(2, kFlagWord)).emit();  // SPM[flag] = SRF2
    pb.line().lcu(lcu_exit()).emit();
    return pb.build();
  };
  const isa::KernelImage img = make_kernel2("dynpoll", poller(), writer());

  Rig ri(ExecMode::kInterpret);
  Rig rt(ExecMode::kTraceCache);
  for (Rig* r : {&ri, &rt}) {
    r->seed(Rng(89));
    r->acc.spm().poke(kFlagWord, 0);          // flag starts clear
    r->acc.column(0).srf().poke(4, kFlagWord);
    r->acc.column(1).srf().poke(2, 7);        // the value the writer posts
  }
  const unsigned ki = ri.acc.register_kernel(img);
  const unsigned kt = rt.acc.register_kernel(img);
  ri.acc.run_kernel(ki);
  rt.acc.run_kernel(kt);  // must terminate (budget -> rollback -> lockstep)
  EXPECT_EQ(rt.acc.traced_rollbacks(), 1u);
  expect_identical(ri, rt, "dynamic cross-column poll");

  // Later launches go straight to lockstep (the hint holds while resident).
  for (Rig* r : {&ri, &rt}) r->acc.spm().poke(kFlagWord, 0);
  ri.acc.run_kernel(ki);
  rt.acc.run_kernel(kt);
  EXPECT_EQ(rt.acc.traced_rollbacks(), 1u);
  expect_identical(ri, rt, "dynamic cross-column poll, lockstep relaunch");
}

/// kRcCross operands inside a lockstep-traced pair: both columns read the
/// partner's previous-cycle RC results. Such programs used to be
/// non-traceable (interpreter only); they now compile with a partner
/// snapshot slot and replay on the per-cycle lockstep tier -- the
/// interpreter never runs on the happy path.
TEST(TraceCache, CrossColumnOperandsReplayInLockstep) {
  auto make_prog = [](isa::RcDst dst) {
    ProgramBuilder pb;
    pb.line().rc_all(rc_add(isa::RcDst::kR0, isa::RcSrc::kVwrA,
                            isa::RcSrc::kOne)).emit();
    pb.line().rc_all(rc_add(dst, isa::RcSrc::kRcCross,
                            isa::RcSrc::kR0)).emit();
    pb.line().rc_all(rc_mv(dst, isa::RcSrc::kRcCross)).emit();
    pb.line().lcu(lcu_exit()).emit();
    return pb.build();
  };
  const isa::ColumnProgram p0 = make_prog(isa::RcDst::kVwrB);
  const isa::ColumnProgram p1 = make_prog(isa::RcDst::kVwrC);

  const auto t0 = cgra::compile_trace(p0);
  ASSERT_TRUE(t0->ok);
  EXPECT_TRUE(t0->has_cross);
  const auto t1 = cgra::compile_trace(p1);
  const cgra::tc::SyncPlan plan = cgra::tc::make_sync_plan(t0.get(), t1.get());
  EXPECT_EQ(plan.mode, cgra::tc::SyncPlan::Mode::kLockstep);

  Rig ri(ExecMode::kInterpret);
  Rig rt(ExecMode::kTraceCache);
  ri.seed(Rng(91));
  rt.seed(Rng(91));
  const isa::KernelImage img = make_kernel2("cross", p0, p1);
  const unsigned ki = ri.acc.register_kernel(img);
  const unsigned kt = rt.acc.register_kernel(img);
  ri.acc.run_kernel(ki);
  rt.acc.run_kernel(kt);
  expect_identical(ri, rt, "cross-operand lockstep replay");
  EXPECT_EQ(rt.acc.traced_launches(), 1u);
  EXPECT_EQ(rt.acc.traced_rollbacks(), 0u);
  EXPECT_EQ(rt.acc.interpreted_cycles(), 0u);
  EXPECT_GT(rt.acc.replayed_lockstep_cycles(), 0u);
}

/// A kRcCross operand without a running partner column must surface the
/// interpreter's documented SimError with identical partial state: the
/// replay faults on the missing snapshot, rolls back, and the interpreter
/// reruns to raise it.
TEST(TraceCache, CrossWithoutPartnerFaultsIdentically) {
  ProgramBuilder pb;
  pb.line().rc_all(rc_mv(isa::RcDst::kR0, isa::RcSrc::kOne)).emit();
  pb.line().rc_all(rc_mv(isa::RcDst::kVwrC, isa::RcSrc::kRcCross)).emit();
  pb.line().lcu(lcu_exit()).emit();
  const isa::KernelImage img = make_kernel("lonecross", 0, pb.build());

  Rig ri(ExecMode::kInterpret);
  Rig rt(ExecMode::kTraceCache);
  ri.seed(Rng(92));
  rt.seed(Rng(92));
  const unsigned ki = ri.acc.register_kernel(img);
  const unsigned kt = rt.acc.register_kernel(img);
  std::string err_i, err_t;
  try {
    ri.acc.run_kernel(ki);
  } catch (const SimError& e) {
    err_i = e.what();
  }
  try {
    rt.acc.run_kernel(kt);
  } catch (const SimError& e) {
    err_t = e.what();
  }
  EXPECT_FALSE(err_i.empty());
  EXPECT_EQ(err_i, err_t);
  expect_identical(ri, rt, "lone cross fault path");
}

// --- fleet-batched replay ----------------------------------------------------

/// BatchReplayer: one compiled trace driven across several devices in a
/// single host loop. Each lane's outcome -- state, cycles, energy, per-lane
/// fused trip counts -- must be identical to running that device alone.
TEST(TraceCache, BatchedReplayMatchesScalarPerLane) {
  constexpr std::size_t kLanes = 4;
  cgra::TraceCache shared;
  const isa::KernelImage img =
      make_kernel("counted", 0, counted_accumulate_program());

  std::vector<std::unique_ptr<Rig>> trig, irig;
  std::array<cgra::Vwr2a*, kLanes> devs{};
  std::array<unsigned, kLanes> kids{};
  std::array<unsigned, kLanes> ikids{};
  for (std::size_t i = 0; i < kLanes; ++i) {
    trig.push_back(std::make_unique<Rig>(ExecMode::kTraceCache));
    irig.push_back(std::make_unique<Rig>(ExecMode::kInterpret));
    trig[i]->acc.set_trace_cache(&shared);
    trig[i]->seed(Rng(100 + i));
    irig[i]->seed(Rng(100 + i));
    devs[i] = &trig[i]->acc;
    kids[i] = trig[i]->acc.register_kernel(img);
    ikids[i] = irig[i]->acc.register_kernel(img);
    // Per-lane data-dependent trip count: the batched fused loop must read
    // each device's own counter.
    trig[i]->acc.host_write_srf(0, 0, 3 + 2 * static_cast<Word>(i));
    irig[i]->acc.host_write_srf(0, 0, 3 + 2 * static_cast<Word>(i));
  }

  // Cold devices are not batchable; warm them with one scalar launch.
  std::array<const void*, arch::kNumColumns> key0{}, key{};
  EXPECT_FALSE(cgra::tc::BatchReplayer::identity(*devs[0], kids[0], key0));
  for (std::size_t i = 0; i < kLanes; ++i) {
    trig[i]->acc.run_kernel(kids[i]);
    irig[i]->acc.run_kernel(ikids[i]);
  }
  ASSERT_TRUE(cgra::tc::BatchReplayer::identity(*devs[0], kids[0], key0));
  for (std::size_t i = 1; i < kLanes; ++i) {
    ASSERT_TRUE(cgra::tc::BatchReplayer::identity(*devs[i], kids[i], key));
    // The shared cache makes the same program pointer-identical fleet-wide.
    EXPECT_EQ(key, key0);
  }

  // Batched second launch vs scalar interpreter twins.
  cgra::tc::BatchReplayer::run(devs.data(), kids.data(), kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) {
    irig[i]->acc.run_kernel(ikids[i]);
    expect_identical(*irig[i], *trig[i], "lane " + std::to_string(i));
    EXPECT_EQ(trig[i]->acc.launches(), 2u);
    EXPECT_EQ(trig[i]->acc.batched_launches(), 1u);
    EXPECT_EQ(trig[i]->acc.traced_rollbacks(), 0u);
  }
}

/// Random-program batched fuzz: after a clean warmup launch, a batched
/// relaunch across three devices must equal three scalar interpreter
/// relaunches lane for lane -- including trials where the lanes' plans are
/// not decoupled (the batch detaches them to the scalar ladder).
TEST(TraceCacheFuzz, BatchedReplayMatchesInterpreterLanes) {
  constexpr std::size_t kLanes = 3;
  Rng rng(0xBA7C);
  unsigned batched_trials = 0;
  // Dense random lines fault on the single-ported SRF most of the time (the
  // population the scalar fuzz pins); batching needs *runnable* kernels, so
  // screen candidates with a throwaway interpreter probe first.
  auto gen_runnable = [&rng](unsigned len, bool two_cols) {
    isa::KernelImage img;
    for (int attempt = 0; attempt < 200; ++attempt) {
      const isa::ColumnProgram prog = random_program(rng, len);
      // The shared synchronized PC requires equal column program lengths.
      img = two_cols ? make_kernel2("bfuzz2", prog, random_program(rng, len))
                     : make_kernel("bfuzz", 0, prog);
      Rig probe(ExecMode::kInterpret);
      probe.seed(Rng(rng.next_u64()));
      for (unsigned c = 0; c < arch::kNumColumns; ++c) {
        probe.acc.column(c).srf().poke(3, 2);
      }
      try {
        probe.acc.run_kernel(probe.acc.register_kernel(img));
        break;  // runnable with at least one data seed
      } catch (...) {
      }
    }
    return img;
  };
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t data_seed = rng.next_u64();
    const unsigned len = 2 + rng.next_below(12);
    const bool two_cols = rng.next_below(2) == 1;
    const isa::KernelImage img = gen_runnable(len, two_cols);

    cgra::TraceCache shared;
    std::vector<std::unique_ptr<Rig>> trig, irig;
    std::array<cgra::Vwr2a*, kLanes> devs{};
    std::array<unsigned, kLanes> kids{};
    std::array<unsigned, kLanes> ikids{};
    bool warm_ok = true;
    for (std::size_t i = 0; i < kLanes; ++i) {
      trig.push_back(std::make_unique<Rig>(ExecMode::kTraceCache));
      irig.push_back(std::make_unique<Rig>(ExecMode::kInterpret));
      trig[i]->acc.set_trace_cache(&shared);
      const std::uint64_t lane_seed = data_seed + i;
      trig[i]->seed(Rng(lane_seed));
      irig[i]->seed(Rng(lane_seed));
      for (unsigned c = 0; c < arch::kNumColumns; ++c) {
        trig[i]->acc.column(c).srf().poke(3, 2 + static_cast<Word>(i));
        irig[i]->acc.column(c).srf().poke(3, 2 + static_cast<Word>(i));
      }
      devs[i] = &trig[i]->acc;
      kids[i] = trig[i]->acc.register_kernel(img);
      ikids[i] = irig[i]->acc.register_kernel(img);
    }
    // Warmup launch per lane on both engines; a faulting program is already
    // covered by the scalar fuzz, so only clean trials go on to batch.
    for (std::size_t i = 0; i < kLanes && warm_ok; ++i) {
      try {
        irig[i]->acc.run_kernel(ikids[i]);
        trig[i]->acc.run_kernel(kids[i]);
      } catch (...) {
        warm_ok = false;
      }
    }
    if (!warm_ok) continue;
    // Interpreter relaunch first: a data-dependent fault on the second
    // launch (possible after state evolved) skips the trial.
    bool relaunch_ok = true;
    for (std::size_t i = 0; i < kLanes && relaunch_ok; ++i) {
      try {
        irig[i]->acc.run_kernel(ikids[i]);
      } catch (...) {
        relaunch_ok = false;
      }
    }
    if (!relaunch_ok) continue;
    cgra::tc::BatchReplayer::run(devs.data(), kids.data(), kLanes);
    ++batched_trials;
    for (std::size_t i = 0; i < kLanes; ++i) {
      expect_identical(*irig[i], *trig[i],
                       "trial " + std::to_string(trial) + " lane " +
                           std::to_string(i));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  EXPECT_GT(batched_trials, 10u);
}

TEST(TraceCache, StaticHazardBailsToInterpreterWithSameFault) {
  // Two different SRF addresses in one line: the single-ported SRF throws
  // StructuralHazard at runtime; the compiler must refuse to trace it and
  // the traced rig must raise the identical fault.
  ProgramBuilder pb;
  pb.line()
      .rc(0, rc_op(isa::RcOp::kSadd, isa::RcDst::kR0, isa::RcSrc::kSrf,
                   isa::RcSrc::kZero, /*srf=*/1))
      .rc(1, rc_op(isa::RcOp::kSadd, isa::RcDst::kR0, isa::RcSrc::kSrf,
                   isa::RcSrc::kZero, /*srf=*/2))
      .emit();
  pb.line().lcu(lcu_exit()).emit();
  const isa::ColumnProgram prog = pb.build();

  const auto trace = cgra::compile_trace(prog);
  EXPECT_FALSE(trace->ok);
  EXPECT_FALSE(trace->bail_reason.empty());

  Rig ri(ExecMode::kInterpret);
  Rig rt(ExecMode::kTraceCache);
  const unsigned ki = ri.acc.register_kernel(make_kernel("hz", 0, prog));
  const unsigned kt = rt.acc.register_kernel(make_kernel("hz", 0, prog));
  EXPECT_THROW(ri.acc.run_kernel(ki), StructuralHazard);
  EXPECT_THROW(rt.acc.run_kernel(kt), StructuralHazard);
  expect_identical(ri, rt, "hazard fault path");
}

TEST(TraceCache, SharedTraceCacheCompilesOnce) {
  cgra::TraceCache shared;
  const isa::ColumnProgram prog = counted_accumulate_program();
  const auto t1 = shared.get_or_compile("vwr3.w32", prog);
  const auto t2 = shared.get_or_compile("vwr3.w32", prog);
  EXPECT_EQ(t1.get(), t2.get());
  auto st = shared.stats();
  EXPECT_EQ(st.compiled, 1u);
  EXPECT_EQ(st.hits, 1u);
  // A different variant namespace compiles its own copy (ISSUE: traces are
  // keyed by ArchConfig variant).
  const auto t3 = shared.get_or_compile("vwr2.w32", prog);
  EXPECT_NE(t1.get(), t3.get());
  EXPECT_EQ(shared.stats().compiled, 2u);
}

TEST(TraceCache, CompiledBlocksLookRight) {
  const auto trace = cgra::compile_trace(counted_accumulate_program());
  ASSERT_TRUE(trace->ok);
  ASSERT_EQ(trace->length(), 5u);
  // Blocks: [0,1] (falls to the loop leader), [2] dbnz self-loop (fused),
  // [3,4] exit.
  ASSERT_EQ(trace->blocks.size(), 3u);
  EXPECT_EQ(trace->blocks[0].len, 2u);
  EXPECT_EQ(trace->blocks[1].first, 2u);
  EXPECT_EQ(trace->blocks[1].term, cgra::tc::Term::kDbnz);
  EXPECT_TRUE(trace->blocks[1].fuse_self_loop);
  EXPECT_EQ(trace->blocks[2].term, cgra::tc::Term::kExit);
  // Per-block energy is non-empty and contains the per-cycle fetch events.
  for (const auto& b : trace->blocks) {
    bool has_fetch = false;
    for (const auto& d : b.energy) {
      if (d.e == energy::Event::kInstrFetchRc) {
        has_fetch = true;
        EXPECT_EQ(d.n, 4ull * b.len);
      }
    }
    EXPECT_TRUE(has_fetch);
  }
}

TEST(TraceCache, ExecModeIsCostModelTransparent) {
  soc::ArchConfig a;
  a.exec_mode = ExecMode::kTraceCache;
  EXPECT_TRUE(a.is_baseline());          // engine choice is not a variant
  EXPECT_EQ(a.name(), "vwr3.w32");       // image-cache namespace unchanged
  soc::Platform::Config b;               // the ISSUE's spelling
  b.exec_mode = ExecMode::kInterpret;
  EXPECT_EQ(soc::ArchConfig{}, b);
}

} // namespace
} // namespace vwr2a
