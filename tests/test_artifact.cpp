// The artifact subsystem (src/artifact/): builder determinism, loader
// validation, corruption fuzzing (a damaged artifact is cleanly rejected
// and the fleet falls back to in-process assembly with identical results),
// hydration counters, and the ImageCache compile-once regression.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <vector>

#include "artifact/builder.hpp"
#include "artifact/codec.hpp"
#include "artifact/format.hpp"
#include "artifact/store.hpp"
#include "kernels/fir.hpp"
#include "runtime/device.hpp"
#include "runtime/pool.hpp"

namespace vwr2a::artifact {
namespace {

using runtime::DevicePool;
using runtime::Job;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "vwr2a_" + name + ".vwr2art";
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(b.data()),
          static_cast<std::streamsize>(b.size()));
  ASSERT_TRUE(f.good());
}

/// A small, fast artifact: the baseline variant only, catalog populated by
/// a handful of jobs run on one device in trace mode. Seconds matter here
/// -- the fuzz test opens hundreds of mutated copies.
std::vector<std::uint8_t> small_artifact_bytes() {
  isa::ImageCache cache;
  runtime::Device dev(0, cache,
                      soc::ArchConfig{.exec_mode = cgra::ExecMode::kTraceCache});
  std::vector<std::int32_t> taps(kernels::kFirTaps, 1024);
  std::vector<std::int32_t> x(256);
  for (unsigned i = 0; i < x.size(); ++i) {
    x[i] = static_cast<std::int32_t>(i % 128) - 64;
  }
  std::uint64_t seq = 0;
  dev.run(Job{runtime::FirJob{256, runtime::make_buffer(taps),
                              runtime::make_buffer(x)},
              "fir", -1},
          seq++);
  dev.run(Job{runtime::ReduceJob{runtime::ReduceOp::kEnergy, 128,
                                 runtime::make_buffer(
                                     std::vector<std::int32_t>(128, 33))},
              "reduce", -1},
          seq++);
  return serialize_cache(cache);
}

const std::vector<std::uint8_t>& small_artifact() {
  static const std::vector<std::uint8_t> bytes = small_artifact_bytes();
  return bytes;
}

// --- format & loader ----------------------------------------------------------

TEST(Artifact, RoundTripOpensAndVerifies) {
  const std::string path = temp_path("roundtrip");
  write_file(path, small_artifact());
  std::string why;
  const auto store = Store::open(path, &why);
  ASSERT_NE(store, nullptr) << why;
  EXPECT_GT(store->image_count(), 0u);
  EXPECT_GT(store->trace_count(), 0u);
  EXPECT_EQ(store->file_size(), small_artifact().size());
  EXPECT_TRUE(store->verify_all(&why)) << why;
  // Index keys come back sorted (the canonical order the builder wrote).
  const auto keys = store->image_keys();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(Artifact, HydratedImagesAreByteIdenticalToBuilt) {
  // Serialize a cache, load every entry back through the Store, and
  // re-encode: the hydrated objects must round-trip to the same bytes.
  isa::ImageCache cache;
  runtime::Device dev(0, cache,
                      soc::ArchConfig{.exec_mode = cgra::ExecMode::kTraceCache});
  std::vector<std::int32_t> x(128, 5);
  std::uint64_t seq = 0;
  dev.run(Job{runtime::ReduceJob{runtime::ReduceOp::kMax, 128,
                                 runtime::make_buffer(x)},
              "r", -1},
          seq++);
  const std::string path = temp_path("identity");
  write_file(path, serialize_cache(cache));
  std::string why;
  const auto store = Store::open(path, &why);
  ASSERT_NE(store, nullptr) << why;
  std::size_t checked = 0;
  cache.for_each_image([&](const std::string& key, const auto& built) {
    const auto loaded = store->load_image(key);
    ASSERT_NE(loaded, nullptr) << key;
    std::vector<std::uint8_t> a, b;
    encode_image(*built, a);
    encode_image(*loaded, b);
    EXPECT_EQ(a, b) << key;
    ++checked;
  });
  EXPECT_GT(checked, 0u);
  EXPECT_EQ(store->counters().images_served, checked);
}

TEST(Artifact, MissingAndBogusFilesAreRejected) {
  std::string why;
  EXPECT_EQ(Store::open(temp_path("nonexistent"), &why), nullptr);
  EXPECT_FALSE(why.empty());

  const std::string path = temp_path("bogus");
  write_file(path, std::vector<std::uint8_t>(4096, 0x5a));
  EXPECT_EQ(Store::open(path, &why), nullptr);

  write_file(path, {});
  EXPECT_EQ(Store::open(path, &why), nullptr);
}

TEST(Artifact, WrongVersionAndArchTagAreRejected) {
  std::vector<std::uint8_t> bytes = small_artifact();
  // Bump the format version and refresh both checksums so only the version
  // check can reject: version gating must not depend on checksum luck.
  auto rewrite = [](std::vector<std::uint8_t> b, std::size_t off,
                    std::uint64_t value) {
    patch_u64(b, off, value);
    patch_u64(b, kOffPayloadFnv,
              fnv1a(b.data() + kHeaderBytes, b.size() - kHeaderBytes));
    patch_u64(b, kOffHeaderFnv, 0);
    patch_u64(b, kOffHeaderFnv, fnv1a(b.data(), kHeaderBytes));
    return b;
  };
  const std::string path = temp_path("version");
  std::string why;

  const std::uint64_t good_ver =
      static_cast<std::uint64_t>(kFormatVersion) |
      (static_cast<std::uint64_t>(arch_tag()) << 32);
  write_file(path, rewrite(bytes, kOffVersion, good_ver + 1));
  EXPECT_EQ(Store::open(path, &why), nullptr);
  EXPECT_NE(why.find("version"), std::string::npos) << why;

  write_file(path, rewrite(bytes, kOffVersion,
                           good_ver ^ (1ull << 40)));  // arch tag bit
  EXPECT_EQ(Store::open(path, &why), nullptr);
  EXPECT_NE(why.find("architecture"), std::string::npos) << why;
}

// --- corruption fuzz ----------------------------------------------------------

/// Every single-bit flip anywhere in the file must be rejected at open():
/// the header checksum covers the header, the payload checksum covers the
/// rest, so there are no don't-care bytes.
TEST(Artifact, FuzzBitFlipsRejectedCleanly) {
  const std::vector<std::uint8_t>& good = small_artifact();
  const std::string path = temp_path("fuzz_flip");
  std::uint64_t lcg = 0x243f6a8885a308d3ull;  // fixed seed: deterministic
  for (int trial = 0; trial < 200; ++trial) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const std::size_t pos = (lcg >> 16) % good.size();
    const unsigned bit = (lcg >> 8) & 7u;
    std::vector<std::uint8_t> bad = good;
    bad[pos] ^= static_cast<std::uint8_t>(1u << bit);
    write_file(path, bad);
    std::string why;
    EXPECT_EQ(Store::open(path, &why), nullptr)
        << "bit " << bit << " at byte " << pos << " accepted";
    EXPECT_FALSE(why.empty());
  }
}

TEST(Artifact, FuzzTruncationAndOversizeRejectedCleanly) {
  const std::vector<std::uint8_t>& good = small_artifact();
  const std::string path = temp_path("fuzz_size");
  std::string why;
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, kHeaderBytes - 1, kHeaderBytes,
        kHeaderBytes + 7, good.size() / 2, good.size() - 1}) {
    write_file(path,
               std::vector<std::uint8_t>(good.begin(), good.begin() + n));
    EXPECT_EQ(Store::open(path, &why), nullptr) << "truncated to " << n;
  }
  for (const std::size_t extra : {std::size_t{1}, std::size_t{4096}}) {
    std::vector<std::uint8_t> bad = good;
    bad.insert(bad.end(), extra, 0);
    write_file(path, bad);
    EXPECT_EQ(Store::open(path, &why), nullptr)
        << "extended by " << extra << " bytes";
  }
}

/// A pool pointed at a corrupt artifact must run cold with bit-identical
/// results -- corruption can cost the warm start, never correctness.
TEST(Artifact, CorruptArtifactFallsBackBitIdentical) {
  std::vector<std::uint8_t> bad = small_artifact();
  bad[bad.size() / 2] ^= 0x40;
  const std::string path = temp_path("fallback");
  write_file(path, bad);

  auto run = [&](const std::string& artifact_path) {
    DevicePool::Config cfg;
    cfg.artifact_path = artifact_path;
    cfg.artifact_env = false;  // pin the pool to exactly this path
    cfg.device_arch = {
        soc::ArchConfig{.exec_mode = cgra::ExecMode::kTraceCache}};
    DevicePool pool(cfg);
    std::vector<std::int32_t> x(512);
    for (unsigned i = 0; i < x.size(); ++i) {
      x[i] = static_cast<std::int32_t>((i * 97) % 2048) - 1024;
    }
    auto result =
        pool.submit(Job{runtime::CfftJob{256, runtime::make_buffer(x)},
                        "cfft", -1})
            .get();
    auto stats = pool.stats();
    return std::make_pair(std::move(result), std::move(stats));
  };

  const auto [cold_result, cold_stats] = run("");
  const auto [bad_result, bad_stats] = run(path);
  EXPECT_FALSE(bad_stats.artifact_attached);  // rejected at open
  EXPECT_EQ(bad_stats.image_cache.hydrated, 0u);
  EXPECT_EQ(bad_result.output, cold_result.output);
  EXPECT_EQ(bad_result.cost.cpu_cycles, cold_result.cost.cpu_cycles);
  EXPECT_EQ(bad_result.cost.vwr2a_cycles, cold_result.cost.vwr2a_cycles);
  EXPECT_EQ(bad_result.cost.vwr2a_pj, cold_result.cost.vwr2a_pj);
}

// --- hydration ----------------------------------------------------------------

TEST(Artifact, PoolHydratesImagesAndTraces) {
  const std::string path = temp_path("hydrate");
  write_file(path, small_artifact());

  DevicePool::Config cfg;
  cfg.artifact_path = path;
  cfg.artifact_env = false;
  cfg.device_arch = {
      soc::ArchConfig{.exec_mode = cgra::ExecMode::kTraceCache}};
  DevicePool pool(cfg);
  std::vector<std::int32_t> taps(kernels::kFirTaps, 1024);
  std::vector<std::int32_t> x(256);
  for (unsigned i = 0; i < x.size(); ++i) {
    x[i] = static_cast<std::int32_t>(i % 128) - 64;
  }
  pool.submit(Job{runtime::FirJob{256, runtime::make_buffer(taps),
                                  runtime::make_buffer(x)},
                  "fir", -1})
      .get();
  const runtime::FleetStats s = pool.stats();
  EXPECT_TRUE(s.artifact_attached);
  EXPECT_GT(s.image_cache.hydrated, 0u);
  EXPECT_EQ(s.image_cache.builds, 0u);  // everything came from the artifact
  EXPECT_GT(s.trace_cache.hydrated, 0u);
  EXPECT_EQ(s.trace_cache.compiled, 0u);
  EXPECT_EQ(s.artifact_images, s.image_cache.hydrated);
  EXPECT_EQ(s.artifact_traces, s.trace_cache.hydrated);
  EXPECT_EQ(s.artifact_rejects, 0u);
}

TEST(Artifact, EnvVariableOverridesConfigPath) {
  const std::string path = temp_path("env");
  write_file(path, small_artifact());
  ASSERT_EQ(setenv("VWR2A_ARTIFACT", path.c_str(), 1), 0);
  {
    DevicePool::Config cfg;  // no artifact_path; artifact_env defaults on
    DevicePool pool(cfg);
    EXPECT_NE(pool.artifact(), nullptr);
    EXPECT_EQ(pool.artifact()->path(), path);
  }
  {
    DevicePool::Config cfg;
    cfg.artifact_env = false;  // opt out: env must be ignored
    DevicePool pool(cfg);
    EXPECT_EQ(pool.artifact(), nullptr);
  }
  ASSERT_EQ(unsetenv("VWR2A_ARTIFACT"), 0);
}

// --- ImageCache compile-once regression ---------------------------------------

/// Many threads missing the same key concurrently must run the builder
/// exactly once (the old miss path could assemble the image once per racing
/// thread and publish one winner -- wasted work that Stats::builds now
/// makes observable).
TEST(Artifact, ImageCacheBuildsOncePerKeyUnderRace) {
  isa::ImageCache cache;
  std::atomic<unsigned> builder_runs{0};
  constexpr unsigned kThreads = 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &builder_runs] {
      auto img = cache.get_or_build("contended", [&builder_runs] {
        builder_runs.fetch_add(1);
        // Widen the race window: every thread reaches the once-flag
        // before the first build finishes.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        isa::KernelImage image;
        image.name = "contended";
        return image;
      });
      EXPECT_NE(img, nullptr);
      EXPECT_EQ(img->name, "contended");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(builder_runs.load(), 1u);
  const auto s = cache.stats();
  EXPECT_EQ(s.builds, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, kThreads - 1);
  EXPECT_EQ(s.entries, 1u);
  // All threads must share one image object, not copies.
  EXPECT_EQ(cache.get_or_build("contended", [] {
                 ADD_FAILURE() << "rebuilt a cached key";
                 return isa::KernelImage{};
               })
                ->name,
            "contended");
}

/// The hydration hook: a source that has the key suppresses the builder; a
/// source miss falls back to building, transparently.
TEST(Artifact, ImageCacheConsultsSourceBeforeBuilding) {
  class OneKeySource : public isa::ImageSource {
   public:
    std::shared_ptr<const isa::KernelImage> load_image(
        const std::string& key) override {
      if (key != "prebuilt") return nullptr;
      auto img = std::make_shared<isa::KernelImage>();
      img->name = "from-source";
      return img;
    }
  };
  OneKeySource source;
  isa::ImageCache cache;
  cache.set_source(&source);

  EXPECT_EQ(cache.get_or_build("prebuilt", [] {
                 ADD_FAILURE() << "built a key the source holds";
                 return isa::KernelImage{};
               })
                ->name,
            "from-source");
  EXPECT_EQ(cache.get_or_build("other", [] {
                 isa::KernelImage img;
                 img.name = "built";
                 return img;
               })
                ->name,
            "built");
  const auto s = cache.stats();
  EXPECT_EQ(s.hydrated, 1u);
  EXPECT_EQ(s.builds, 1u);
  EXPECT_EQ(s.misses, 2u);
}

// --- builder determinism ------------------------------------------------------

TEST(Artifact, SerializationIsDeterministic) {
  // Two independent populate+serialize runs in this process; the CI gate
  // additionally cmp's two separate vwr2a_artifact processes.
  EXPECT_EQ(small_artifact_bytes(), small_artifact_bytes());
}

} // namespace
} // namespace vwr2a::artifact
