// Gateway frame codec: round-trip property tests for every frame type
// (random payloads, chunked incremental feeding) and decoder hardening --
// truncated, oversized, corrupted and random byte streams must raise
// ProtocolError (or wait for more bytes), never crash, over-read, or
// blow up an allocation.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "gateway/protocol.hpp"

namespace vwr2a::gateway {
namespace {

std::vector<std::int32_t> random_samples(Rng& rng, unsigned max_len) {
  std::vector<std::int32_t> v(rng.next_below(max_len + 1));
  for (auto& x : v) {
    x = static_cast<std::int32_t>(rng.next_u32());
  }
  return v;
}

std::string random_string(Rng& rng, unsigned max_len) {
  std::string s(rng.next_below(max_len + 1), '\0');
  for (auto& c : s) {
    c = static_cast<char>(rng.next_below(256));
  }
  return s;
}

Stats random_stats(Rng& rng) {
  Stats f;
  f.devices = rng.next_u32();
  f.sessions = rng.next_u64();
  f.connections = rng.next_u64();
  f.windows_delivered = rng.next_u64();
  f.jobs_completed = rng.next_u64();
  f.jobs_failed = rng.next_u64();
  f.fleet_makespan = rng.next_u64();
  f.total_device_cycles = rng.next_u64();
  f.stagings = rng.next_u64();
  f.total_pj = rng.next_range(0.0, 1e12);
  f.images_hydrated = rng.next_u64();
  f.traces_hydrated = rng.next_u64();
  f.artifact_attached = static_cast<std::uint8_t>(rng.next_below(2));
  f.devices_failed = rng.next_u64();
  f.devices_revived = rng.next_u64();
  f.devices_dead = rng.next_u64();
  f.jobs_rescued = rng.next_u64();
  f.checkpoints_restored = rng.next_u64();
  f.traced_launches = rng.next_u64();
  f.traced_rollbacks = rng.next_u64();
  f.batched_launches = rng.next_u64();
  f.jobs_batched = rng.next_u64();
  f.replay_decoupled_cycles = rng.next_u64();
  f.replay_lockstep_cycles = rng.next_u64();
  f.replay_interpreted_cycles = rng.next_u64();
  f.replay_sync_points = rng.next_u64();
  return f;
}

/// One random frame of each wire type, round-robin by `i`.
Frame random_frame(Rng& rng, unsigned i) {
  switch (i % 13) {
    case 0: {
      OpenSession f;
      f.stream = rng.next_u32();
      f.tenant = rng.next_u32();
      f.kind = static_cast<std::uint8_t>(rng.next_below(256));
      f.target = static_cast<std::uint8_t>(rng.next_below(256));
      f.lossy = static_cast<std::uint8_t>(rng.next_below(2));
      f.window = rng.next_u32();
      f.hop = rng.next_u32();
      f.max_inflight = rng.next_u32();
      f.buffer_capacity = rng.next_u32();
      return f;
    }
    case 1:
      return PushSamples{rng.next_u32(), random_samples(rng, 600)};
    case 2:
      return Flush{rng.next_u32()};
    case 3:
      return Close{rng.next_u32()};
    case 4:
      return StatsRequest{};
    case 5:
      return OpenOk{rng.next_u32(), rng.next_u64(), rng.next_u32()};
    case 6: {
      WindowResult f;
      f.stream = rng.next_u32();
      f.index = rng.next_u64();
      f.device = rng.next_u32();
      f.cycles = rng.next_u64();
      f.pj = rng.next_range(-1e9, 1e9);
      f.output = random_samples(rng, 600);
      f.queue_ns = rng.next_u64();
      f.run_ns = rng.next_u64();
      f.deliver_ns = rng.next_u64();
      f.place_cycles = rng.next_u64();
      f.sim_begin = rng.next_u64();
      return f;
    }
    case 7:
      return FlushOk{rng.next_u32(), rng.next_u64()};
    case 8: {
      CloseOk f;
      f.stream = rng.next_u32();
      f.windows_submitted = rng.next_u64();
      f.windows_delivered = rng.next_u64();
      f.windows_failed = rng.next_u64();
      f.samples_in = rng.next_u64();
      f.dropped_samples = rng.next_u64();
      f.dropped_pushes = rng.next_u64();
      f.latency_cycles_total = rng.next_u64();
      f.latency_cycles_max = rng.next_u64();
      return f;
    }
    case 9:
      return random_stats(rng);
    case 10: {
      Error f;
      f.stream = rng.next_u32();
      f.code = static_cast<std::uint16_t>(rng.next_below(1u << 16));
      f.message = random_string(rng, 120);
      return f;
    }
    case 11: {
      StatsSubscribe f;
      f.cadence_ms = rng.next_u32();
      f.enable = static_cast<std::uint8_t>(rng.next_below(2));
      return f;
    }
    default: {
      StatsPush f;
      f.seq = rng.next_u64();
      f.stats = random_stats(rng);
      f.devices.resize(rng.next_below(9));
      for (auto& d : f.devices) {
        d.cycles = rng.next_u64();
        d.jobs = rng.next_u64();
        d.dead = static_cast<std::uint8_t>(rng.next_below(2));
      }
      f.sessions.resize(rng.next_below(9));
      for (auto& s : f.sessions) {
        s.id = rng.next_u64();
        s.device = rng.next_u32();
        s.windows_submitted = rng.next_u64();
        s.windows_delivered = rng.next_u64();
        s.dropped_samples = rng.next_u64();
        s.latency_cycles_total = rng.next_u64();
      }
      return f;
    }
  }
}

bool stats_equal(const Stats& x, const Stats& y) {
  return x.devices == y.devices && x.sessions == y.sessions &&
         x.connections == y.connections &&
         x.windows_delivered == y.windows_delivered &&
         x.jobs_completed == y.jobs_completed &&
         x.jobs_failed == y.jobs_failed &&
         x.fleet_makespan == y.fleet_makespan &&
         x.total_device_cycles == y.total_device_cycles &&
         x.stagings == y.stagings && x.total_pj == y.total_pj &&
         x.images_hydrated == y.images_hydrated &&
         x.traces_hydrated == y.traces_hydrated &&
         x.artifact_attached == y.artifact_attached &&
         x.devices_failed == y.devices_failed &&
         x.devices_revived == y.devices_revived &&
         x.devices_dead == y.devices_dead && x.jobs_rescued == y.jobs_rescued &&
         x.checkpoints_restored == y.checkpoints_restored &&
         x.traced_launches == y.traced_launches &&
         x.traced_rollbacks == y.traced_rollbacks &&
         x.batched_launches == y.batched_launches &&
         x.jobs_batched == y.jobs_batched &&
         x.replay_decoupled_cycles == y.replay_decoupled_cycles &&
         x.replay_lockstep_cycles == y.replay_lockstep_cycles &&
         x.replay_interpreted_cycles == y.replay_interpreted_cycles &&
         x.replay_sync_points == y.replay_sync_points;
}

bool frames_equal(const Frame& a, const Frame& b) {
  if (a.index() != b.index()) return false;
  bool eq = false;
  std::visit(
      [&](const auto& x) {
        using T = std::decay_t<decltype(x)>;
        const auto& y = std::get<T>(b);
        if constexpr (std::is_same_v<T, OpenSession>) {
          eq = x.stream == y.stream && x.tenant == y.tenant &&
               x.kind == y.kind && x.target == y.target &&
               x.lossy == y.lossy && x.window == y.window && x.hop == y.hop &&
               x.max_inflight == y.max_inflight &&
               x.buffer_capacity == y.buffer_capacity;
        } else if constexpr (std::is_same_v<T, PushSamples>) {
          eq = x.stream == y.stream && x.samples == y.samples;
        } else if constexpr (std::is_same_v<T, Flush>) {
          eq = x.stream == y.stream;
        } else if constexpr (std::is_same_v<T, Close>) {
          eq = x.stream == y.stream;
        } else if constexpr (std::is_same_v<T, StatsRequest>) {
          eq = true;
        } else if constexpr (std::is_same_v<T, OpenOk>) {
          eq = x.stream == y.stream && x.session == y.session &&
               x.device == y.device;
        } else if constexpr (std::is_same_v<T, WindowResult>) {
          eq = x.stream == y.stream && x.index == y.index &&
               x.device == y.device && x.cycles == y.cycles && x.pj == y.pj &&
               x.output == y.output && x.queue_ns == y.queue_ns &&
               x.run_ns == y.run_ns && x.deliver_ns == y.deliver_ns &&
               x.place_cycles == y.place_cycles && x.sim_begin == y.sim_begin;
        } else if constexpr (std::is_same_v<T, FlushOk>) {
          eq = x.stream == y.stream &&
               x.windows_delivered == y.windows_delivered;
        } else if constexpr (std::is_same_v<T, CloseOk>) {
          eq = x.stream == y.stream &&
               x.windows_submitted == y.windows_submitted &&
               x.windows_delivered == y.windows_delivered &&
               x.windows_failed == y.windows_failed &&
               x.samples_in == y.samples_in &&
               x.dropped_samples == y.dropped_samples &&
               x.dropped_pushes == y.dropped_pushes &&
               x.latency_cycles_total == y.latency_cycles_total &&
               x.latency_cycles_max == y.latency_cycles_max;
        } else if constexpr (std::is_same_v<T, Stats>) {
          eq = stats_equal(x, y);
        } else if constexpr (std::is_same_v<T, StatsSubscribe>) {
          eq = x.cadence_ms == y.cadence_ms && x.enable == y.enable;
        } else if constexpr (std::is_same_v<T, StatsPush>) {
          eq = x.seq == y.seq && stats_equal(x.stats, y.stats) &&
               x.devices.size() == y.devices.size() &&
               x.sessions.size() == y.sessions.size();
          for (std::size_t j = 0; eq && j < x.devices.size(); ++j) {
            eq = x.devices[j].cycles == y.devices[j].cycles &&
                 x.devices[j].jobs == y.devices[j].jobs &&
                 x.devices[j].dead == y.devices[j].dead;
          }
          for (std::size_t j = 0; eq && j < x.sessions.size(); ++j) {
            eq = x.sessions[j].id == y.sessions[j].id &&
                 x.sessions[j].device == y.sessions[j].device &&
                 x.sessions[j].windows_submitted ==
                     y.sessions[j].windows_submitted &&
                 x.sessions[j].windows_delivered ==
                     y.sessions[j].windows_delivered &&
                 x.sessions[j].dropped_samples ==
                     y.sessions[j].dropped_samples &&
                 x.sessions[j].latency_cycles_total ==
                     y.sessions[j].latency_cycles_total;
          }
        } else {  // Error
          eq = x.stream == y.stream && x.code == y.code &&
               x.message == y.message;
        }
      },
      a);
  return eq;
}

TEST(GatewayProtocol, RoundTripsEveryFrameType) {
  Rng rng(11001);
  for (unsigned i = 0; i < 220; ++i) {
    const Frame want = random_frame(rng, i);
    Decoder dec;
    dec.feed(encode(want));
    const auto got = dec.next();
    ASSERT_TRUE(got.has_value()) << "frame " << i;
    EXPECT_TRUE(frames_equal(want, *got)) << "frame " << i;
    EXPECT_EQ(dec.buffered(), 0u) << "frame " << i;
    EXPECT_FALSE(dec.next().has_value());
  }
}

TEST(GatewayProtocol, DecodesByteAtATimeAndInBursts) {
  // The incremental decoder must produce the same frames regardless of how
  // the byte stream is chunked.
  Rng rng(11002);
  std::vector<Frame> want;
  std::vector<std::uint8_t> wire;
  for (unsigned i = 0; i < 22; ++i) {
    want.push_back(random_frame(rng, i));
    encode(want.back(), wire);
  }
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{17}, wire.size()}) {
    Decoder dec;
    std::vector<Frame> got;
    for (std::size_t off = 0; off < wire.size(); off += chunk) {
      const std::size_t n = std::min(chunk, wire.size() - off);
      dec.feed(wire.data() + off, n);
      while (auto f = dec.next()) got.push_back(std::move(*f));
    }
    ASSERT_EQ(got.size(), want.size()) << "chunk " << chunk;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_TRUE(frames_equal(want[i], got[i]))
          << "chunk " << chunk << " frame " << i;
    }
  }
}

TEST(GatewayProtocol, IncompleteFrameWaitsForMoreBytes) {
  const std::vector<std::uint8_t> wire =
      encode(PushSamples{7, {1, 2, 3, 4, 5}});
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Decoder dec;
    dec.feed(wire.data(), cut);
    EXPECT_FALSE(dec.next().has_value()) << "cut " << cut;  // never throws
    dec.feed(wire.data() + cut, wire.size() - cut);
    EXPECT_TRUE(dec.next().has_value()) << "cut " << cut;
  }
}

TEST(GatewayProtocol, RejectsOversizedLengthPrefixBeforeAllocating) {
  // length = 0xffffffff: must throw on the 4-byte prefix alone, without
  // waiting for (or allocating) 4 GiB.
  Decoder dec;
  const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0xff};
  dec.feed(huge, sizeof huge);
  EXPECT_THROW(dec.next(), ProtocolError);
  // Poisoned: connection-fatal semantics.
  EXPECT_THROW(dec.next(), ProtocolError);
}

TEST(GatewayProtocol, RejectsRuntLengthPrefix) {
  Decoder dec;
  const std::uint8_t runt[4] = {1, 0, 0, 0};  // length 1 < ver + type
  dec.feed(runt, sizeof runt);
  EXPECT_THROW(dec.next(), ProtocolError);
}

TEST(GatewayProtocol, RejectsBadVersionAndUnknownType) {
  {
    std::vector<std::uint8_t> wire = encode(Flush{1});
    wire[4] = kProtocolVersion + 1;
    Decoder dec;
    dec.feed(wire);
    try {
      dec.next();
      FAIL() << "bad version accepted";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code, ErrorCode::kBadVersion);
    }
  }
  {
    std::vector<std::uint8_t> wire = encode(Flush{1});
    wire[5] = 0x7f;  // no such frame type
    Decoder dec;
    dec.feed(wire);
    try {
      dec.next();
      FAIL() << "unknown type accepted";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code, ErrorCode::kUnknownType);
    }
  }
}

TEST(GatewayProtocol, RejectsLyingArrayCountWithoutOverReading) {
  // A PUSH_SAMPLES frame whose sample count claims more than the payload
  // holds: the decoder must reject it before touching bytes past the
  // frame (or allocating count * 4).
  std::vector<std::uint8_t> wire = encode(PushSamples{9, {1, 2, 3}});
  // Patch the count field (payload offset: stream u32 -> count at +4;
  // frame header is 6 bytes).
  wire[10] = 0xff;
  wire[11] = 0xff;
  wire[12] = 0xff;
  wire[13] = 0x7f;
  Decoder dec;
  dec.feed(wire);
  EXPECT_THROW(dec.next(), ProtocolError);
}

TEST(GatewayProtocol, RejectsTrailingBytesInsidePayload) {
  // A frame longer than its payload needs: strict framing rejects it.
  std::vector<std::uint8_t> wire = encode(Flush{3});
  wire.push_back(0xab);                // extra payload byte...
  wire[0] = static_cast<std::uint8_t>(wire[0] + 1);  // ...covered by length
  Decoder dec;
  dec.feed(wire);
  EXPECT_THROW(dec.next(), ProtocolError);
}

TEST(GatewayProtocol, TruncatedPayloadFieldsThrowNotCrash) {
  // Chop a valid frame's length prefix down so the payload ends mid-field:
  // every cut must throw (truncated read), never crash.
  const std::vector<std::uint8_t> full = encode(
      WindowResult{5, 123, 2, 456, 1.5, {10, 20, 30}});
  const std::size_t payload = full.size() - 6;
  for (std::size_t keep = 0; keep < payload; ++keep) {
    std::vector<std::uint8_t> wire(full.begin(),
                                   full.begin() + 6 + static_cast<long>(keep));
    const auto len = static_cast<std::uint32_t>(keep + 2);
    for (int i = 0; i < 4; ++i) {
      wire[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(len >> (8 * i));
    }
    Decoder dec;
    dec.feed(wire);
    EXPECT_THROW(dec.next(), ProtocolError) << "keep " << keep;
  }
}

TEST(GatewayProtocol, TruncatedStatsPushThrowsNotCrash) {
  // Same cut-everywhere sweep over a v4 STATS_PUSH: every truncation must
  // hit the count-vs-remaining validation (or a truncated scalar read) and
  // throw before allocating either load array.
  StatsPush push;
  push.seq = 7;
  push.stats.devices = 4;
  push.devices.resize(3);
  push.sessions.resize(2);
  const std::vector<std::uint8_t> full = encode(push);
  const std::size_t payload = full.size() - 6;
  for (std::size_t keep = 0; keep < payload; ++keep) {
    std::vector<std::uint8_t> wire(full.begin(),
                                   full.begin() + 6 + static_cast<long>(keep));
    const auto len = static_cast<std::uint32_t>(keep + 2);
    for (int i = 0; i < 4; ++i) {
      wire[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(len >> (8 * i));
    }
    Decoder dec;
    dec.feed(wire);
    EXPECT_THROW(dec.next(), ProtocolError) << "keep " << keep;
  }
}

TEST(GatewayProtocol, RandomByteFuzzNeverCrashes) {
  // Pure noise: the decoder either waits for more, yields a (meaningless
  // but type-safe) frame, or throws ProtocolError. 2k streams.
  Rng rng(11003);
  for (unsigned round = 0; round < 2000; ++round) {
    Decoder dec;
    const unsigned len = 1 + rng.next_below(200);
    std::vector<std::uint8_t> junk(len);
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    // Bias some prefixes toward plausible headers so deeper paths fuzz too.
    if (round % 4 == 0 && junk.size() >= 6) {
      junk[0] = static_cast<std::uint8_t>(junk.size() - 4);
      junk[1] = junk[2] = junk[3] = 0;
      junk[4] = kProtocolVersion;
      junk[5] = static_cast<std::uint8_t>(1 + rng.next_below(12));
    }
    dec.feed(junk);
    try {
      while (dec.next().has_value()) {
      }
    } catch (const ProtocolError&) {
      // fine: rejected
    }
  }
}

TEST(GatewayProtocol, CorruptedFrameFuzzRoundTrips) {
  // Flip one byte of a valid frame anywhere: decode must yield a frame,
  // wait, or throw -- never crash; and an untouched second frame after a
  // *non-header* corruption inside the first must not be misframed when
  // the first still parses.
  Rng rng(11004);
  for (unsigned round = 0; round < 800; ++round) {
    const Frame f = random_frame(rng, round);
    std::vector<std::uint8_t> wire = encode(f);
    const std::size_t at = rng.next_below(static_cast<unsigned>(wire.size()));
    wire[at] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    Decoder dec;
    dec.feed(wire);
    try {
      while (dec.next().has_value()) {
      }
    } catch (const ProtocolError&) {
    }
  }
}

} // namespace
} // namespace vwr2a::gateway
