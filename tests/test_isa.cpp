// ISA encode/decode round-trips, field validation, and disassembly.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "isa/instr.hpp"

namespace vwr2a::isa {
namespace {

class RcOps : public ::testing::TestWithParam<unsigned> {};

TEST_P(RcOps, EncodeDecodeRoundTrip) {
  Rng rng(GetParam());
  RcInstr i;
  i.op = static_cast<RcOp>(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    i.src_a = static_cast<RcSrc>(rng.next_below(static_cast<unsigned>(RcSrc::kCount)));
    i.src_b = static_cast<RcSrc>(rng.next_below(static_cast<unsigned>(RcSrc::kCount)));
    i.dst = static_cast<RcDst>(rng.next_below(static_cast<unsigned>(RcDst::kCount)));
    i.srf = static_cast<std::uint8_t>(rng.next_below(8));
    i.imm = static_cast<std::int8_t>(rng.next_u32());
    EXPECT_EQ(decode_rc(encode(i)), i);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, RcOps,
                         ::testing::Range(0u, static_cast<unsigned>(RcOp::kCount)));

class LcuOps : public ::testing::TestWithParam<unsigned> {};

TEST_P(LcuOps, EncodeDecodeRoundTrip) {
  Rng rng(GetParam() + 100);
  LcuInstr i;
  i.op = static_cast<LcuOp>(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    i.rd = static_cast<std::uint8_t>(rng.next_below(4));
    i.ra = static_cast<std::uint8_t>(rng.next_below(4));
    i.rb = static_cast<std::uint8_t>(rng.next_below(4));
    i.srf = static_cast<std::uint8_t>(rng.next_below(8));
    i.target = static_cast<std::uint8_t>(rng.next_below(64));
    i.imm = static_cast<std::int16_t>(static_cast<int>(rng.next_below(1024)) - 512);
    EXPECT_EQ(decode_lcu(encode(i)), i);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, LcuOps,
                         ::testing::Range(0u, static_cast<unsigned>(LcuOp::kCount)));

class LsuOps : public ::testing::TestWithParam<unsigned> {};

TEST_P(LsuOps, EncodeDecodeRoundTrip) {
  Rng rng(GetParam() + 200);
  LsuInstr i;
  i.op = static_cast<LsuOp>(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    i.vwr = static_cast<VwrSel>(rng.next_below(3));
    i.mode = static_cast<ShufMode>(rng.next_below(8));
    i.amode = static_cast<LsuAddrMode>(rng.next_below(4));
    i.srf_base = static_cast<std::uint8_t>(rng.next_below(8));
    i.srf_data = static_cast<std::uint8_t>(rng.next_below(8));
    i.imm = static_cast<std::int16_t>(rng.next_below(60));  // legal row
    EXPECT_EQ(decode_lsu(encode(i)), i);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, LsuOps,
                         ::testing::Range(0u, static_cast<unsigned>(LsuOp::kCount)));

class MxcuOps : public ::testing::TestWithParam<unsigned> {};

TEST_P(MxcuOps, EncodeDecodeRoundTrip) {
  Rng rng(GetParam() + 300);
  MxcuInstr i;
  i.op = static_cast<MxcuOp>(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    i.srf = static_cast<std::uint8_t>(rng.next_below(8));
    i.imm = static_cast<std::int16_t>(static_cast<int>(rng.next_below(4096)) - 2048);
    EXPECT_EQ(decode_mxcu(encode(i)), i);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, MxcuOps,
                         ::testing::Range(0u, static_cast<unsigned>(MxcuOp::kCount)));

TEST(Validation, RejectsOutOfRangeFields) {
  RcInstr rc;
  rc.srf = 8;
  EXPECT_THROW(encode(rc), AsmError);

  LcuInstr lcu;
  lcu.target = 64;
  EXPECT_THROW(encode(lcu), AsmError);
  lcu.target = 0;
  lcu.imm = 512;
  EXPECT_THROW(encode(lcu), AsmError);

  LsuInstr lsu;
  lsu.op = LsuOp::kLdVwr;
  lsu.imm = 64;  // SPM has 64 rows: 0..63
  EXPECT_THROW(encode(lsu), AsmError);

  MxcuInstr mx;
  mx.imm = 2048;
  EXPECT_THROW(encode(mx), AsmError);
}

TEST(Decode, RejectsBadOpcodes) {
  EXPECT_THROW(decode_rc(0xFFFFFFFFu), DecodeError);
  EXPECT_THROW(decode_lcu(0xFFFFFFFFu), DecodeError);
  EXPECT_THROW(decode_mxcu(0xFFFFFFFFu), DecodeError);
}

TEST(Disasm, NopIsAllZeros) {
  EXPECT_EQ(disassemble(Slot::LCU, 0), "nop");
  EXPECT_EQ(disassemble(Slot::LSU, 0), "nop");
  EXPECT_EQ(disassemble(Slot::MXCU, 0), "nop");
  EXPECT_EQ(disassemble(Slot::RC0, 0), "nop");
}

TEST(Disasm, RendersOperands) {
  RcInstr i;
  i.op = RcOp::kSadd;
  i.dst = RcDst::kVwrC;
  i.src_a = RcSrc::kVwrA;
  i.src_b = RcSrc::kSrf;
  i.srf = 3;
  EXPECT_EQ(to_asm(i), "sadd vwrc, vwra, srf3");

  LcuInstr b;
  b.op = LcuOp::kBlt;
  b.ra = 0;
  b.rb = 1;
  b.target = 5;
  EXPECT_EQ(to_asm(b), "blt r0, r1, @5");
}

} // namespace
} // namespace vwr2a::isa
