// Golden-model self-consistency: the DSP references must agree with the
// direct DFT and with each other before any kernel is trusted against them.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "dsp/reference.hpp"
#include "dsp/signal.hpp"

namespace vwr2a::dsp {
namespace {

std::vector<cplx> random_signal(unsigned n, Rng& rng) {
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx(rng.next_range(-0.9, 0.9), rng.next_range(-0.9, 0.9));
  return x;
}

double max_err(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

class FftSizes : public ::testing::TestWithParam<unsigned> {};

TEST_P(FftSizes, PeaseMatchesDft) {
  Rng rng(GetParam());
  const auto x = random_signal(GetParam(), rng);
  EXPECT_LT(max_err(pease_fft(x), dft(x)), 1e-6 * GetParam());
}

TEST_P(FftSizes, PeaseMatchesRadix2) {
  Rng rng(GetParam() + 1);
  const auto x = random_signal(GetParam(), rng);
  EXPECT_LT(max_err(pease_fft(x), fft_radix2(x)), 1e-9 * GetParam());
}

TEST_P(FftSizes, FixedPointTracksDouble) {
  const unsigned n = GetParam();
  Rng rng(n + 2);
  std::vector<CplxFx> xf(n);
  std::vector<cplx> xd(n);
  for (unsigned i = 0; i < n; ++i) {
    const double re = rng.next_range(-0.9, 0.9);
    const double im = rng.next_range(-0.9, 0.9);
    xf[i] = {fx::to_q16_15(re), fx::to_q16_15(im)};
    xd[i] = cplx(fx::from_q16_15(xf[i].re), fx::from_q16_15(xf[i].im));
  }
  const auto ff = pease_fft_fx(xf);
  const auto fd = pease_fft(xd);
  // Truncating 16.15 multiplies: error grows ~per stage; allow a generous
  // but discriminating bound (values themselves grow up to ~n).
  const double tol = 2e-4 * n;
  for (unsigned i = 0; i < n; ++i) {
    EXPECT_NEAR(fx::from_q16_15(ff[i].re), fd[i].real(), tol) << "bin " << i;
    EXPECT_NEAR(fx::from_q16_15(ff[i].im), fd[i].imag(), tol) << "bin " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values(4u, 8u, 16u, 64u, 256u, 512u, 1024u));

TEST(Rfft, MatchesDftOnReal) {
  const unsigned n = 512;
  Rng rng(7);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.next_range(-0.9, 0.9);
  const auto spec = rfft(x);
  std::vector<cplx> xc(x.begin(), x.end());
  const auto ref = dft(xc);
  ASSERT_EQ(spec.size(), n / 2 + 1);
  for (unsigned k = 0; k <= n / 2; ++k) {
    EXPECT_NEAR(std::abs(spec[k] - ref[k]), 0.0, 1e-6 * n) << "bin " << k;
  }
}

TEST(RfftFx, TracksDouble) {
  const unsigned n = 512;
  Rng rng(9);
  std::vector<std::int32_t> xf(n);
  std::vector<double> xd(n);
  for (unsigned i = 0; i < n; ++i) {
    xf[i] = fx::to_q16_15(rng.next_range(-0.9, 0.9));
    xd[i] = fx::from_q16_15(xf[i]);
  }
  const auto ff = rfft_fx(xf);
  const auto fd = rfft(xd);
  for (unsigned k = 0; k <= n / 2; ++k) {
    EXPECT_NEAR(fx::from_q16_15(ff[k].re), fd[k].real(), 0.1) << k;
    EXPECT_NEAR(fx::from_q16_15(ff[k].im), fd[k].imag(), 0.1) << k;
  }
}

TEST(Fir, MatchesConvolution) {
  Rng rng(11);
  std::vector<double> x(300);
  for (auto& v : x) v = rng.next_range(-1.0, 1.0);
  std::vector<double> h = {0.1, 0.2, 0.4, 0.2, 0.1};
  const auto y = fir(x, h);
  for (unsigned n = 0; n < x.size(); ++n) {
    double acc = 0;
    for (unsigned t = 0; t < h.size(); ++t) {
      if (n >= t) acc += h[t] * x[n - t];
    }
    EXPECT_NEAR(y[n], acc, 1e-12);
  }
}

TEST(FirFx, TracksDouble) {
  Rng rng(13);
  const auto taps = fir11_lowpass_q15();
  std::vector<std::int32_t> x(400);
  std::vector<double> xd(400);
  for (unsigned i = 0; i < x.size(); ++i) {
    x[i] = fx::to_q16_15(rng.next_range(-0.9, 0.9));
    xd[i] = fx::from_q16_15(x[i]);
  }
  std::vector<double> hd(taps.size());
  for (unsigned i = 0; i < taps.size(); ++i) hd[i] = fx::from_coeff(taps[i]);
  const auto yf = fir_fx(x, taps);
  const auto yd = fir(xd, hd);
  for (unsigned i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(fx::from_q16_15(yf[i]), yd[i], 1e-3) << i;
  }
}

TEST(Stats, IntegerAgainstSorted) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const unsigned n = 1 + rng.next_below(200);
    std::vector<std::int32_t> v(n);
    for (auto& x : v) x = static_cast<std::int32_t>(rng.next_u32());
    std::vector<std::int32_t> s = v;
    std::sort(s.begin(), s.end());
    const std::int32_t med = median_i32(v);
    // med is an element, and at least floor(n/2)+1 elements are <= med.
    unsigned le = 0;
    bool found = false;
    for (auto x : v) {
      if (x <= med) ++le;
      if (x == med) found = true;
    }
    EXPECT_TRUE(found);
    EXPECT_GE(le, n / 2 + 1);
  }
}

TEST(Delineation, CandidateFormEqualsSerial) {
  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    const unsigned n = 3 + rng.next_below(400);
    std::vector<std::int32_t> x(n);
    // Random walk with occasional plateaus: stresses tie handling.
    std::int32_t v = 0;
    for (auto& s : x) {
      if (rng.next_below(5) != 0) {
        v += static_cast<std::int32_t>(rng.next_below(2001)) - 1000;
      }
      s = v;
    }
    const std::int32_t thr = static_cast<std::int32_t>(rng.next_below(1500));
    EXPECT_EQ(delineate(x, thr), delineate_candidates(x, thr)) << "trial " << trial;
  }
}

TEST(Delineation, RespirationSignalHasAlternatingExtrema) {
  Rng rng(29);
  const auto x = respiration_q16_15(1024, RespirationParams{}, rng);
  const auto taps = fir11_lowpass_q15();
  const auto filt = fir_fx(x, taps);
  const auto ext = delineate(filt, fx::to_q16_15(0.1));
  ASSERT_GE(ext.size(), 4u);
  for (std::size_t i = 1; i < ext.size(); ++i) {
    EXPECT_NE(ext[i].is_max, ext[i - 1].is_max) << "extrema must alternate";
    EXPECT_GT(ext[i].index, ext[i - 1].index);
  }
}

TEST(Svm, DecisionMatchesFloat) {
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    const unsigned d = 2 + rng.next_below(12);
    std::vector<std::int32_t> f(d), w(d);
    double acc = 0.0;
    for (unsigned i = 0; i < d; ++i) {
      const double fv = rng.next_range(-2.0, 2.0);
      const double wv = rng.next_range(-1.0, 1.0);
      f[i] = fx::to_q16_15(fv);
      w[i] = fx::to_coeff(wv);
      acc += fx::from_q16_15(f[i]) * fx::from_coeff(w[i]);
    }
    const double bias = rng.next_range(-0.5, 0.5);
    acc += bias;
    if (std::abs(acc) < 1e-2) continue;  // skip knife-edge cases
    EXPECT_EQ(svm_decision_fx(f, w, fx::to_q16_15(bias)), acc >= 0 ? 1 : -1);
  }
}

} // namespace
} // namespace vwr2a::dsp
