// Fuzzing: the simulator must never exhibit undefined behaviour. Random
// (field-constrained) programs either run to EXIT or throw one of the
// documented SimError subclasses; random 32-bit words either decode or
// throw DecodeError.

#include <gtest/gtest.h>

#include "bus/ahb.hpp"
#include "casm/builder.hpp"
#include "casm/factories.hpp"
#include "cgra/vwr2a.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "energy/meter.hpp"
#include "isa/instr.hpp"
#include "mem/sram.hpp"

namespace vwr2a {
namespace {

using namespace casm;

isa::RcInstr random_rc(Rng& rng) {
  isa::RcInstr i;
  i.op = static_cast<isa::RcOp>(rng.next_below(static_cast<unsigned>(isa::RcOp::kCount)));
  i.src_a = static_cast<isa::RcSrc>(
      rng.next_below(static_cast<unsigned>(isa::RcSrc::kCount)));
  i.src_b = static_cast<isa::RcSrc>(
      rng.next_below(static_cast<unsigned>(isa::RcSrc::kCount)));
  i.dst = static_cast<isa::RcDst>(
      rng.next_below(static_cast<unsigned>(isa::RcDst::kCount)));
  i.srf = static_cast<std::uint8_t>(rng.next_below(8));
  i.imm = static_cast<std::int8_t>(rng.next_u32());
  return i;
}

isa::LsuInstr random_lsu(Rng& rng) {
  isa::LsuInstr i;
  // Restrict to ops whose addresses stay legal; pointer modes are covered
  // by directed tests (a random pointer walk leaves the SPM immediately).
  switch (rng.next_below(6)) {
    case 0: return i;  // nop
    case 1: i = lsu_ld_vwr(static_cast<VwrSel>(rng.next_below(3)),
                           rng.next_below(arch::kSpmRows)); break;
    case 2: i = lsu_st_vwr(static_cast<VwrSel>(rng.next_below(3)),
                           rng.next_below(arch::kSpmRows)); break;
    case 3: i = lsu_ld_srf(static_cast<std::uint8_t>(rng.next_below(8)),
                           rng.next_below(arch::kSpmWords)); break;
    case 4: i = lsu_st_srf(static_cast<std::uint8_t>(rng.next_below(8)),
                           rng.next_below(arch::kSpmWords)); break;
    default: i = lsu_shuf(static_cast<isa::ShufMode>(rng.next_below(8))); break;
  }
  return i;
}

isa::MxcuInstr random_mxcu(Rng& rng) {
  isa::MxcuInstr i;
  i.op = static_cast<isa::MxcuOp>(
      rng.next_below(static_cast<unsigned>(isa::MxcuOp::kCount)));
  i.srf = static_cast<std::uint8_t>(rng.next_below(8));
  i.imm = static_cast<std::int16_t>(static_cast<int>(rng.next_below(128)) - 64);
  return i;
}

TEST(Fuzz, RandomProgramsNeverCrash) {
  Rng rng(0xF00D);
  unsigned completed = 0, hazards = 0;
  for (int trial = 0; trial < 400; ++trial) {
    energy::EnergyMeter m;
    mem::SystemSram sram(m);
    bus::AhbBus ahb(sram, m);
    cgra::Vwr2a acc(ahb);
    ProgramBuilder pb;
    const unsigned len = 1 + rng.next_below(12);
    for (unsigned l = 0; l < len; ++l) {
      auto line = pb.line();
      if (rng.next_below(2)) line.lsu(random_lsu(rng));
      if (rng.next_below(2)) line.mxcu(random_mxcu(rng));
      for (unsigned r = 0; r < 4; ++r) {
        if (rng.next_below(2)) line.rc(r, random_rc(rng));
      }
      line.emit();
    }
    pb.line().lcu(lcu_exit()).emit();
    try {
      const unsigned id = acc.register_kernel(make_kernel("fuzz", 0, pb.build()));
      acc.run_kernel(id);
      ++completed;
    } catch (const StructuralHazard&) {
      ++hazards;  // expected for conflicting random lines
    } catch (const SimError&) {
      // kRcCross without a partner, etc. -- documented behaviour.
    }
  }
  // Dense random lines collide on the single-ported SRF frequently -- most
  // trials must trip the hazard checker (guarding against it being dead
  // code), while a healthy share still runs to completion.
  EXPECT_GT(completed, 20u);
  EXPECT_GT(hazards, 100u);
}

TEST(Fuzz, RandomWordsDecodeOrThrow) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 20000; ++trial) {
    const std::uint32_t w = rng.next_u32();
    try {
      (void)isa::decode_rc(w);
    } catch (const DecodeError&) {
    }
    try {
      (void)isa::decode_lsu(w);
    } catch (const DecodeError&) {
    }
    try {
      (void)isa::decode_lcu(w);
    } catch (const DecodeError&) {
    }
    try {
      (void)isa::decode_mxcu(w);
    } catch (const DecodeError&) {
    }
  }
}

TEST(Fuzz, DecodedWordsReEncodeIdentically) {
  // Any word that decodes must re-encode to itself modulo reserved bits:
  // encode(decode(w)) must at least decode to the same instruction.
  Rng rng(0xCAFE);
  for (int trial = 0; trial < 5000; ++trial) {
    const std::uint32_t w = rng.next_u32();
    try {
      const auto i = isa::decode_rc(w);
      EXPECT_EQ(isa::decode_rc(isa::encode(i)), i);
    } catch (const SimError&) {
    }
    try {
      const auto i = isa::decode_lsu(w);
      EXPECT_EQ(isa::decode_lsu(isa::encode(i)), i);
    } catch (const SimError&) {
    }
  }
}

} // namespace
} // namespace vwr2a
