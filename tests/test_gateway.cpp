// Gateway end-to-end: loopback and TCP clients against a real fleet.
// Window results must be bit-identical to offline golden runs (and to the
// same workload pushed straight into stream::StreamServer), per-stream
// delivery ordered, admission control and rate quotas enforced with
// deterministic clocks, malformed bytes answered with ERROR frames --
// never a crash.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "app/mbiotracker.hpp"
#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "dsp/reference.hpp"
#include "dsp/signal.hpp"
#include "gateway/client.hpp"
#include "gateway/server.hpp"

namespace vwr2a::gateway {
namespace {

std::vector<std::int32_t> make_stream_samples(std::size_t n, double breath_hz,
                                              unsigned seed) {
  dsp::RespirationParams p;
  p.breath_hz = breath_hz;
  Rng rng(seed);
  return dsp::respiration_q16_15(static_cast<unsigned>(n), p, rng);
}

std::vector<std::vector<std::int32_t>> slice_windows(
    const std::vector<std::int32_t>& samples, unsigned window, unsigned hop,
    bool flush_tail) {
  std::vector<std::vector<std::int32_t>> out;
  std::size_t start = 0;
  while (start + window <= samples.size()) {
    out.emplace_back(samples.begin() + start, samples.begin() + start + window);
    start += hop;
  }
  if (flush_tail && start < samples.size()) {
    std::vector<std::int32_t> tail(samples.begin() + start, samples.end());
    tail.resize(window, 0);
    out.push_back(std::move(tail));
  }
  return out;
}

std::vector<std::int32_t> offline_bio(const std::vector<std::int32_t>& wq) {
  soc::Platform plat;
  app::MBioTracker tracker(plat);
  tracker.init();
  std::vector<double> x(app::kWindow);
  for (unsigned i = 0; i < app::kWindow; ++i) x[i] = fx::from_q16_15(wq[i]);
  const app::AppResult a = tracker.run(app::Target::kCpuVwr2a, x);
  std::vector<std::int32_t> out;
  out.push_back(a.svm_class);
  out.push_back(static_cast<std::int32_t>(a.extrema));
  for (double f : a.feat.as_vector()) out.push_back(fx::to_q16_15(f));
  return out;
}

std::vector<std::int32_t> offline_pipeline(
    const std::vector<std::int32_t>& wq,
    const std::vector<std::int32_t>& taps) {
  const auto filt = dsp::fir_fx(wq, taps);
  std::vector<std::int32_t> out;
  out.push_back(dsp::energy_fx(filt));
  for (const dsp::CplxFx& b : dsp::rfft_fx(filt)) {
    out.push_back(b.re);
    out.push_back(b.im);
  }
  return out;
}

TEST(Gateway, LoopbackStreamBitIdenticalToOfflineAndOrdered) {
  Server::Config cfg;
  cfg.stream.pool.devices = 2;
  Server server(cfg);
  Client client(server.connect_loopback());

  const auto samples = make_stream_samples(3 * app::kWindow + 201, 0.22, 7001);
  std::vector<WindowResult> delivered;
  const std::uint32_t sid = client.open(
      Client::StreamOpts{},
      [&](const WindowResult& r) { delivered.push_back(r); });

  std::size_t off = 0;
  unsigned chunk = 73;
  while (off < samples.size()) {
    const std::size_t take = std::min<std::size_t>(chunk, samples.size() - off);
    client.push(sid, std::span<const std::int32_t>(samples).subspan(off, take));
    off += take;
    chunk = 41 + (chunk * 5) % 173;
  }
  const FlushOk fo = client.flush(sid);  // barrier: all results delivered

  const auto want =
      slice_windows(samples, app::kWindow, app::kWindow, /*flush_tail=*/true);
  EXPECT_EQ(fo.windows_delivered, want.size());
  ASSERT_EQ(delivered.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE("window " + std::to_string(i));
    EXPECT_EQ(delivered[i].stream, sid);
    EXPECT_EQ(delivered[i].index, i);  // ordered by construction
    EXPECT_EQ(delivered[i].output, offline_bio(want[i]));
    EXPECT_GT(delivered[i].cycles, 0u);
  }

  const CloseOk co = client.close_stream(sid);
  EXPECT_EQ(co.windows_submitted, want.size());
  EXPECT_EQ(co.windows_delivered, want.size());
  EXPECT_EQ(co.windows_failed, 0u);
  EXPECT_EQ(co.samples_in, samples.size());
  EXPECT_EQ(co.dropped_samples, 0u);
  server.stop();
}

TEST(Gateway, MultiplexedStreamsOnOneConnection) {
  // Four streams (bio + overlapped pipeline) multiplexed on a single
  // connection, pushes interleaved: per-stream order and goldens must hold.
  Server::Config cfg;
  cfg.stream.pool.devices = 4;
  cfg.stream.pool.device_arch = {soc::ArchConfig{},
                                 soc::ArchConfig{.vwr_count = 2},
                                 soc::ArchConfig{.vwr_count = 4},
                                 soc::ArchConfig{.simd_width = 16}};
  Server server(cfg);
  Client client(server.connect_loopback());
  const auto taps = dsp::fir11_lowpass_q15();

  constexpr unsigned kStreams = 4;
  std::vector<std::vector<std::int32_t>> streams;
  std::map<std::uint32_t, std::vector<WindowResult>> delivered;
  std::vector<std::uint32_t> sids;
  for (unsigned i = 0; i < kStreams; ++i) {
    streams.push_back(
        make_stream_samples(2 * app::kWindow + 57 * i, 0.18 + 0.05 * i,
                            7100 + i));
    Client::StreamOpts opts;
    if (i % 2 == 1) {
      opts.kind = 1;  // pipeline
      opts.hop = 256;
    }
    sids.push_back(client.open(opts, [&delivered, i, &sids](
                                         const WindowResult& r) {
      delivered[r.stream].push_back(r);
      (void)i;
      (void)sids;
    }));
  }

  for (std::size_t off = 0;; off += 131) {
    bool any = false;
    for (unsigned i = 0; i < kStreams; ++i) {
      if (off >= streams[i].size()) continue;
      const std::size_t take =
          std::min<std::size_t>(131, streams[i].size() - off);
      client.push(sids[i],
                  std::span<const std::int32_t>(streams[i]).subspan(off, take));
      any = true;
    }
    if (!any) break;
  }
  for (unsigned i = 0; i < kStreams; ++i) client.flush(sids[i]);

  for (unsigned i = 0; i < kStreams; ++i) {
    SCOPED_TRACE("stream " + std::to_string(i));
    const bool pipeline = i % 2 == 1;
    const auto want = slice_windows(streams[i], app::kWindow,
                                    pipeline ? 256 : app::kWindow,
                                    /*flush_tail=*/true);
    const auto& got = delivered[sids[i]];
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t w = 0; w < want.size(); ++w) {
      SCOPED_TRACE("window " + std::to_string(w));
      EXPECT_EQ(got[w].index, w);
      EXPECT_EQ(got[w].output, pipeline ? offline_pipeline(want[w], taps)
                                        : offline_bio(want[w]));
      // Soft-pinning over the wire: every window ran on the stream's device.
      EXPECT_EQ(got[w].device, client.device_of(sids[i]));
    }
  }
  server.stop();
}

TEST(Gateway, TcpMatchesLoopbackBitForBit) {
  Server::Config cfg;
  cfg.stream.pool.devices = 2;
  Server server(cfg);
  std::uint16_t port = 0;
  try {
    port = server.listen_tcp(0);
  } catch (const HostError& e) {
    GTEST_SKIP() << "TCP unavailable in this environment: " << e.what();
  }

  const auto samples = make_stream_samples(2 * app::kWindow + 99, 0.3, 7200);
  auto run = [&samples](Client& client) {
    std::vector<std::vector<std::int32_t>> outputs;
    const std::uint32_t sid = client.open(
        Client::StreamOpts{},
        [&](const WindowResult& r) { outputs.push_back(r.output); });
    client.push(sid, samples);
    client.flush(sid);
    client.close_stream(sid);
    return outputs;
  };

  Client tcp_client(connect_tcp("127.0.0.1", port));
  const auto via_tcp = run(tcp_client);
  Client loop_client(server.connect_loopback());
  const auto via_loop = run(loop_client);

  ASSERT_EQ(via_tcp.size(), via_loop.size());
  EXPECT_EQ(via_tcp, via_loop);
  EXPECT_GT(via_tcp.size(), 0u);
  server.stop();
}

TEST(Gateway, SessionQuotasEnforced) {
  Server::Config cfg;
  cfg.stream.pool.devices = 1;
  cfg.quotas.max_sessions_per_tenant = 2;
  cfg.quotas.max_inflight = 8;
  Server server(cfg);
  Client client(server.connect_loopback());

  Client::StreamOpts opts;
  opts.tenant = 42;
  const auto s1 = client.open(opts, nullptr);
  (void)client.open(opts, nullptr);
  try {
    (void)client.open(opts, nullptr);
    FAIL() << "third session of the tenant admitted past the quota";
  } catch (const GatewayError& e) {
    EXPECT_EQ(e.error.code,
              static_cast<std::uint16_t>(ErrorCode::kQuotaSessions));
  }
  // A different tenant is unaffected.
  Client::StreamOpts other;
  other.tenant = 43;
  (void)client.open(other, nullptr);

  // In-flight cap.
  Client::StreamOpts greedy;
  greedy.tenant = 43;
  greedy.max_inflight = 9;
  try {
    (void)client.open(greedy, nullptr);
    FAIL() << "max_inflight above the cap admitted";
  } catch (const GatewayError& e) {
    EXPECT_EQ(e.error.code,
              static_cast<std::uint16_t>(ErrorCode::kQuotaInflight));
  }

  // Bad parameters (bio sessions need window == 512).
  Client::StreamOpts bad;
  bad.tenant = 43;
  bad.window = 100;
  bad.hop = 100;
  try {
    (void)client.open(bad, nullptr);
    FAIL() << "bad session params admitted";
  } catch (const GatewayError& e) {
    EXPECT_EQ(e.error.code, static_cast<std::uint16_t>(ErrorCode::kBadParams));
  }

  // Closing a stream releases its quota slot.
  client.close_stream(s1);
  (void)client.open(opts, nullptr);

  // Control frames on unknown streams answer kUnknownStream.
  try {
    client.flush(9999);
    FAIL() << "flush on unknown stream acked";
  } catch (const GatewayError& e) {
    EXPECT_EQ(e.error.code,
              static_cast<std::uint16_t>(ErrorCode::kUnknownStream));
  }
  server.stop();
}

TEST(Gateway, ByteRateQuotaWithDeterministicClock) {
  std::uint64_t fake_ns = 0;  // the clock never advances unless we say so
  Server::Config cfg;
  cfg.stream.pool.devices = 1;
  cfg.quotas.bytes_per_second = 1000.0;
  cfg.quotas.burst_bytes = 4096.0;
  cfg.clock_ns = [&fake_ns] { return fake_ns; };
  Server server(cfg);
  Client client(server.connect_loopback());

  std::vector<std::uint16_t> errors;
  const std::uint32_t sid =
      client.open(Client::StreamOpts{}, nullptr,
                  [&](const Error& e) { errors.push_back(e.code); });

  // 1024 samples = 4096 bytes: exactly the burst, accepted.
  std::vector<std::int32_t> chunk(1024, 0);
  client.push(sid, chunk);
  // The bucket is empty and the clock frozen: any further push is rejected.
  client.push(sid, std::span<const std::int32_t>(chunk).subspan(0, 8));
  client.flush(sid);  // barrier: the ERROR frame precedes FLUSH_OK
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0], static_cast<std::uint16_t>(ErrorCode::kQuotaRate));

  // Advance the fake clock 2 seconds: 2000 bytes refilled, 500 samples fit.
  fake_ns += 2'000'000'000ull;
  client.push(sid, std::span<const std::int32_t>(chunk).subspan(0, 500));
  client.flush(sid);
  EXPECT_EQ(errors.size(), 1u);  // no new rejection
  EXPECT_EQ(server.telemetry().rate_limited, 1u);
  server.stop();
}

TEST(Gateway, LossyStreamDropsAreAccountedInCloseOk) {
  Server::Config cfg;
  cfg.stream.pool.devices = 1;
  Server server(cfg);
  Client client(server.connect_loopback());

  Client::StreamOpts opts;
  opts.lossy = true;
  opts.buffer_capacity = app::kWindow;  // one-window staging buffer
  const std::uint32_t sid = client.open(opts, nullptr);

  // Larger than the whole staging buffer: guaranteed drop regardless of
  // timing.
  std::vector<std::int32_t> big(app::kWindow + 64, 0);
  client.push(sid, big);
  // An exactly-fitting window is accepted once the buffer is empty.
  std::vector<std::int32_t> fit(app::kWindow, 0);
  client.push(sid, fit);
  const CloseOk co = client.close_stream(sid);
  EXPECT_EQ(co.dropped_pushes, 1u);
  EXPECT_EQ(co.dropped_samples, big.size());
  EXPECT_EQ(co.samples_in, fit.size());
  EXPECT_EQ(co.windows_delivered, 1u);
  server.stop();
}

TEST(Gateway, StatsFrameReportsFleetAndGatewayCounters) {
  Server::Config cfg;
  cfg.stream.pool.devices = 3;
  Server server(cfg);
  Client client(server.connect_loopback());

  const auto samples = make_stream_samples(2 * app::kWindow, 0.25, 7300);
  const std::uint32_t sid = client.open(Client::StreamOpts{}, nullptr);
  client.push(sid, samples);
  client.flush(sid);
  // STATS freshness is batch-boundary (peek_stats never blocks); quiesce
  // the fleet so the counters below are exact rather than lower bounds.
  server.streams().pool().wait_idle();

  const Stats st = client.stats();
  EXPECT_EQ(st.devices, 3u);
  EXPECT_EQ(st.connections, 1u);
  EXPECT_EQ(st.sessions, 1u);
  EXPECT_EQ(st.windows_delivered, 2u);
  EXPECT_GE(st.jobs_completed, 2u);
  EXPECT_EQ(st.jobs_failed, 0u);
  EXPECT_GT(st.fleet_makespan, 0u);
  EXPECT_GT(st.total_pj, 0.0);
  server.stop();
}

TEST(Gateway, RawProtocolViolationsGetErrorFrames) {
  // Drive the wire by hand: duplicate stream ids and garbage bytes.
  Server::Config cfg;
  cfg.stream.pool.devices = 1;
  Server server(cfg);
  auto t = server.connect_loopback();

  auto send_frame = [&t](const Frame& f) {
    const auto bytes = encode(f);
    ASSERT_TRUE(t->send(bytes.data(), bytes.size()));
  };
  Decoder dec;
  auto read_frame = [&t, &dec]() -> Frame {
    std::uint8_t buf[4096];
    for (;;) {
      if (auto f = dec.next()) return std::move(*f);
      const std::size_t n = t->recv(buf, sizeof buf);
      if (n == 0) throw HostError("connection closed");
      dec.feed(buf, n);
    }
  };

  OpenSession open;
  open.stream = 5;
  send_frame(open);
  ASSERT_TRUE(std::holds_alternative<OpenOk>(read_frame()));
  send_frame(open);  // duplicate id
  {
    const Frame f = read_frame();
    const auto* err = std::get_if<Error>(&f);
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->code,
              static_cast<std::uint16_t>(ErrorCode::kDuplicateStream));
  }

  // Garbage: an impossible length prefix. The server answers with a
  // connection-level ERROR and drops the connection.
  const std::uint8_t junk[8] = {0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4};
  ASSERT_TRUE(t->send(junk, sizeof junk));
  {
    const Frame f = read_frame();
    const auto* err = std::get_if<Error>(&f);
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->stream, kConnectionStream);
    EXPECT_EQ(err->code, static_cast<std::uint16_t>(ErrorCode::kBadFrame));
  }
  server.stop();
}

TEST(Gateway, MatchesDirectStreamServerBitForBit) {
  // The acceptance-criterion identity in miniature: the same tenant
  // streams through the gateway and directly through a StreamServer with
  // the identical fleet configuration must produce identical window
  // outputs in identical per-session order.
  constexpr unsigned kStreams = 6;
  std::vector<std::vector<std::int32_t>> streams;
  for (unsigned i = 0; i < kStreams; ++i) {
    streams.push_back(
        make_stream_samples(2 * app::kWindow + 77 * i, 0.2 + 0.04 * i,
                            7400 + i));
  }

  auto fleet_cfg = [] {
    stream::StreamServer::Config scfg;
    scfg.pool.devices = 4;
    scfg.pool.device_arch = {soc::ArchConfig{},
                             soc::ArchConfig{.vwr_count = 2},
                             soc::ArchConfig{.vwr_count = 4},
                             soc::ArchConfig{.simd_width = 16}};
    return scfg;
  };

  // Direct run (producer-thread reaping, the PR-3 path).
  std::vector<std::vector<std::vector<std::int32_t>>> direct(kStreams);
  {
    stream::StreamServer server(fleet_cfg());
    std::vector<stream::Session*> sessions;
    for (unsigned i = 0; i < kStreams; ++i) {
      stream::SessionConfig sc;
      if (i % 2 == 1) sc.kind = stream::SessionKind::kPipeline;
      sessions.push_back(&server.open_session(
          sc, [&direct, i](const stream::WindowResult& r) {
            direct[i].push_back(r.job.output);
          }));
    }
    for (unsigned i = 0; i < kStreams; ++i) sessions[i]->push(streams[i]);
    server.finish();
  }

  // Gateway run (one loopback client per stream). Pre-sized slots: each
  // stream's results arrive on its own client's reader thread (single
  // writer per slot, no shared-container mutation).
  std::vector<std::vector<std::vector<std::int32_t>>> gated(kStreams);
  {
    Server::Config cfg;
    cfg.stream = fleet_cfg();
    Server server(cfg);
    std::vector<std::unique_ptr<Client>> clients;
    std::vector<std::uint32_t> sids;
    for (unsigned i = 0; i < kStreams; ++i) {
      clients.push_back(std::make_unique<Client>(server.connect_loopback()));
      Client::StreamOpts opts;
      if (i % 2 == 1) opts.kind = 1;
      sids.push_back(clients.back()->open(
          opts, [&gated, i](const WindowResult& r) {
            gated[i].push_back(r.output);
          }));
    }
    for (unsigned i = 0; i < kStreams; ++i) {
      clients[i]->push(sids[i], streams[i]);
    }
    for (unsigned i = 0; i < kStreams; ++i) clients[i]->flush(sids[i]);
    server.stop();
  }

  ASSERT_EQ(direct.size(), gated.size());
  for (unsigned i = 0; i < kStreams; ++i) {
    SCOPED_TRACE("stream " + std::to_string(i));
    EXPECT_EQ(direct[i], gated[i]);
    EXPECT_GT(direct[i].size(), 0u);
  }
}

TEST(Gateway, ProtocolV3StatsRoundTripsFaultFields) {
  // The v3 STATS payload grew five fault-and-recovery counters; the
  // encoder/decoder pair must keep carrying them bit-exactly in every
  // later protocol version.
  ASSERT_GE(kProtocolVersion, 3u);

  Stats st;
  st.devices = 16;
  st.sessions = 3;
  st.connections = 2;
  st.windows_delivered = 40;
  st.jobs_completed = 41;
  st.jobs_failed = 1;
  st.fleet_makespan = 123456;
  st.total_device_cycles = 654321;
  st.stagings = 7;
  st.total_pj = 3.25;
  st.images_hydrated = 4;
  st.traces_hydrated = 9;
  st.artifact_attached = 1;
  st.devices_failed = 2;
  st.devices_revived = 1;
  st.devices_dead = 1;
  st.jobs_rescued = 6;
  st.checkpoints_restored = 5;

  const auto bytes = encode(Frame{st});
  Decoder dec;
  dec.feed(bytes.data(), bytes.size());
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  const auto* got = std::get_if<Stats>(&*f);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->devices, st.devices);
  EXPECT_EQ(got->jobs_completed, st.jobs_completed);
  EXPECT_EQ(got->artifact_attached, st.artifact_attached);
  EXPECT_EQ(got->devices_failed, st.devices_failed);
  EXPECT_EQ(got->devices_revived, st.devices_revived);
  EXPECT_EQ(got->devices_dead, st.devices_dead);
  EXPECT_EQ(got->jobs_rescued, st.jobs_rescued);
  EXPECT_EQ(got->checkpoints_restored, st.checkpoints_restored);
  EXPECT_FALSE(dec.next().has_value());
}

TEST(Gateway, StatsReportsDeviceFaultsOverTheWire) {
  Server::Config cfg;
  cfg.stream.pool.devices = 3;
  Server server(cfg);
  Client client(server.connect_loopback());

  const std::uint32_t sid = client.open(Client::StreamOpts{}, nullptr);
  const auto samples = make_stream_samples(2 * app::kWindow, 0.25, 8100);
  client.push(sid, samples);
  client.flush(sid);
  server.streams().pool().wait_idle();

  // Fail-stop a device the session is not pinned to (the fleet is idle,
  // so the kill completes synchronously) and read the counters back over
  // the wire.
  const std::uint32_t victim = (client.device_of(sid) + 1) % 3;
  ASSERT_TRUE(server.streams().pool().kill_device(victim));
  Stats st = client.stats();
  EXPECT_EQ(st.devices_failed, 1u);
  EXPECT_EQ(st.devices_dead, 1u);
  EXPECT_EQ(st.devices_revived, 0u);

  ASSERT_TRUE(server.streams().pool().revive_device(victim));
  st = client.stats();
  EXPECT_EQ(st.devices_failed, 1u);
  EXPECT_EQ(st.devices_dead, 0u);
  EXPECT_EQ(st.devices_revived, 1u);
  server.stop();
}

TEST(Gateway, AbruptDisconnectReleasesSessionQuota) {
  // A client that vanishes without CLOSE (crash, cable pull) must not
  // leak its session quota or its server-side Connection: the reader
  // sees EOF, tears the streams down, and serve() reaps the connection.
  Server::Config cfg;
  cfg.stream.pool.devices = 1;
  cfg.quotas.max_sessions_per_tenant = 1;
  Server server(cfg);

  {
    // Drive the wire by hand so no CLOSE frame is ever sent.
    auto t = server.connect_loopback();
    OpenSession open;
    open.stream = 1;
    open.tenant = 42;
    const auto bytes = encode(Frame{open});
    ASSERT_TRUE(t->send(bytes.data(), bytes.size()));
    Decoder dec;
    std::uint8_t buf[4096];
    for (;;) {
      if (auto f = dec.next()) {
        ASSERT_TRUE(std::holds_alternative<OpenOk>(*f));
        break;
      }
      const std::size_t n = t->recv(buf, sizeof buf);
      ASSERT_NE(n, 0u);
      dec.feed(buf, n);
    }
  }  // transport dropped here: abrupt disconnect, no CLOSE

  // The teardown runs on the server's reader thread after it notices
  // EOF, so the quota release is asynchronous -- poll until the tenant's
  // slot comes back.
  Client client(server.connect_loopback());
  Client::StreamOpts opts;
  opts.tenant = 42;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    try {
      (void)client.open(opts, nullptr);
      break;
    } catch (const GatewayError& e) {
      ASSERT_EQ(e.error.code,
                static_cast<std::uint16_t>(ErrorCode::kQuotaSessions));
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "session quota never released after an abrupt disconnect";
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  server.stop();
}

TEST(Gateway, StatsSubscribeDeliversPushesWithoutPolling) {
  // v4 push-mode: one subscribe must yield server-initiated STATS_PUSH
  // frames at the requested cadence -- strictly increasing seq, a device
  // array matching the fleet, the per-session load array -- with no
  // STATS_REQUEST ever in flight. Unsubscribe settles the stream.
  Server::Config cfg;
  cfg.stream.pool.devices = 2;
  Server server(cfg);

  std::mutex mu;
  std::condition_variable cv;
  std::vector<StatsPush> pushes;

  Client client(server.connect_loopback());
  // A little real work first so the pushed frames carry live counters.
  Client::StreamOpts opts;
  const std::uint32_t sid =
      client.open(opts, [](const WindowResult&) {});
  const auto samples = make_stream_samples(app::kWindow, 0.2, 9301);
  client.push(sid, samples);
  client.flush(sid);

  client.subscribe_stats(5, [&](const StatsPush& p) {
    std::lock_guard<std::mutex> lock(mu);
    pushes.push_back(p);
    cv.notify_all();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&pushes] { return pushes.size() >= 4; }));
  }
  client.unsubscribe_stats();
  // Frames already queued may still land; after the settle window the
  // count must stop moving.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  std::size_t settled;
  {
    std::lock_guard<std::mutex> lock(mu);
    settled = pushes.size();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(pushes.size(), settled);
    ASSERT_GE(pushes.size(), 4u);
    for (std::size_t i = 0; i < pushes.size(); ++i) {
      if (i > 0) EXPECT_EQ(pushes[i].seq, pushes[i - 1].seq + 1);
      EXPECT_EQ(pushes[i].devices.size(), 2u);
      EXPECT_EQ(pushes[i].stats.devices, 2u);
    }
    // The stream above ran one window; the newest push must know it.
    const StatsPush& last = pushes.back();
    ASSERT_EQ(last.sessions.size(), 1u);
    EXPECT_EQ(last.sessions[0].windows_submitted, 1u);
    EXPECT_EQ(last.sessions[0].windows_delivered, 1u);
    EXPECT_GT(last.sessions[0].latency_cycles_total, 0u);
    std::uint64_t dev_jobs = 0;
    for (const auto& d : last.devices) dev_jobs += d.jobs;
    EXPECT_EQ(dev_jobs, last.stats.jobs_completed);
  }
  client.close_stream(sid);
  client.close();
  server.stop();
}

TEST(Gateway, StatsSubscribeZeroCadenceRejected) {
  // enable=1 with cadence 0 is a contract violation: the server answers
  // with ERROR kBadParams on the connection stream and keeps serving.
  Server::Config cfg;
  cfg.stream.pool.devices = 1;
  Server server(cfg);
  auto t = server.connect_loopback();

  auto send_frame = [&t](const Frame& f) {
    const auto bytes = encode(f);
    ASSERT_TRUE(t->send(bytes.data(), bytes.size()));
  };
  Decoder dec;
  auto read_frame = [&t, &dec]() -> Frame {
    std::uint8_t buf[4096];
    for (;;) {
      if (auto f = dec.next()) return std::move(*f);
      const std::size_t n = t->recv(buf, sizeof buf);
      if (n == 0) throw HostError("connection closed");
      dec.feed(buf, n);
    }
  };

  send_frame(StatsSubscribe{0, 1});
  {
    const Frame f = read_frame();
    const auto* err = std::get_if<Error>(&f);
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->code, static_cast<std::uint16_t>(ErrorCode::kBadParams));
    EXPECT_EQ(err->stream, kConnectionStream);
  }
  // The connection survives: a normal request still gets its reply.
  send_frame(StatsRequest{});
  EXPECT_TRUE(std::holds_alternative<Stats>(read_frame()));
  t->shutdown();
  server.stop();
}

} // namespace
} // namespace vwr2a::gateway
