// VWR2A FIR kernel against the exact fixed-point golden model.

#include <gtest/gtest.h>

#include "bus/ahb.hpp"
#include "cgra/vwr2a.hpp"
#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "dsp/reference.hpp"
#include "dsp/signal.hpp"
#include "energy/meter.hpp"
#include "kernels/fir.hpp"
#include "kernels/host.hpp"
#include "mem/sram.hpp"

namespace vwr2a::kernels {
namespace {

struct Rig {
  energy::EnergyMeter sys_meter;
  mem::SystemSram sram{sys_meter};
  bus::AhbBus ahb{sram, sys_meter};
  cgra::Vwr2a acc{ahb};
  Host host{acc, sram, nullptr};
  FirKernels fir{host};

  static constexpr unsigned kZeros = 0;
  static constexpr unsigned kIn = 64;
  unsigned out;

  explicit Rig(unsigned n) : out(kIn + n) { fir.prepare(kZeros); }
};

class FirSizes : public ::testing::TestWithParam<unsigned> {};

TEST_P(FirSizes, BitExactAgainstGolden) {
  const unsigned n = GetParam();
  Rig rig(n);
  Rng rng(n * 7 + 1);
  const auto taps = dsp::fir11_lowpass_q15();
  std::vector<std::int32_t> x(n);
  for (unsigned i = 0; i < n; ++i) {
    x[i] = fx::to_q16_15(rng.next_range(-0.9, 0.9));
    rig.sram.poke(rig.kIn + i, static_cast<Word>(x[i]));
  }
  const FirRunStats stats = rig.fir.fir11(n, taps, rig.kIn, rig.out);
  EXPECT_GT(stats.cycles, 0u);
  const auto golden = dsp::fir_fx(x, taps);
  for (unsigned i = 0; i < n; ++i) {
    EXPECT_EQ(static_cast<std::int32_t>(rig.sram.peek(rig.out + i)), golden[i])
        << "sample " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FirSizes,
                         ::testing::Values(64u, 100u, 256u, 512u, 1000u, 1024u));

TEST(FirCycles, InPaperBallpark) {
  // Table 4: 1849 cycles for 256 points on VWR2A.
  Rig rig(256);
  const auto taps = dsp::fir11_lowpass_q15();
  for (unsigned i = 0; i < 256; ++i) rig.sram.poke(rig.kIn + i, 0);
  const FirRunStats stats = rig.fir.fir11(256, taps, rig.kIn, rig.out);
  EXPECT_GT(stats.cycles, 1849u / 2);
  EXPECT_LT(stats.cycles, 1849u * 2);
}

TEST(Fir, RandomTapsProperty) {
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    Rig rig(300);
    std::vector<std::int32_t> taps(kFirTaps);
    for (auto& t : taps) t = fx::to_coeff(rng.next_range(-0.3, 0.3));
    std::vector<std::int32_t> x(300);
    for (unsigned i = 0; i < x.size(); ++i) {
      x[i] = fx::to_q16_15(rng.next_range(-0.9, 0.9));
      rig.sram.poke(rig.kIn + i, static_cast<Word>(x[i]));
    }
    rig.fir.fir11(300, taps, rig.kIn, rig.out);
    const auto golden = dsp::fir_fx(x, taps);
    for (unsigned i = 0; i < x.size(); ++i) {
      ASSERT_EQ(static_cast<std::int32_t>(rig.sram.peek(rig.out + i)), golden[i])
          << "trial " << trial << " sample " << i;
    }
  }
}

} // namespace
} // namespace vwr2a::kernels
