// SoC platform integration: snapshot/delta accounting, host-control
// charging, accelerator power gating, and the signal generator.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dsp/signal.hpp"
#include "soc/platform.hpp"

namespace vwr2a::soc {
namespace {

TEST(Platform, SnapshotDeltaTracksCpuWork) {
  Platform p;
  const auto s0 = p.snapshot();
  p.cpu().op(cpu::Op::kAlu, 100);
  p.cpu().op(cpu::Op::kLoad, 10);
  const auto s1 = p.snapshot();
  const auto d = Platform::delta(s0, s1);
  EXPECT_EQ(d.cpu_cycles, 120u);  // 100 alu + 10 loads at 2 cycles
  EXPECT_GT(d.sys_pj, 0.0);
  EXPECT_EQ(d.vwr2a_cycles, 0u);
}

TEST(Platform, HostControlChargesCpuAndBus) {
  Platform p;
  const auto s0 = p.snapshot();
  p.charge_host_control();
  const auto d = Platform::delta(s0, p.snapshot());
  EXPECT_EQ(d.cpu_cycles, kHostProgramCycles + kHostIrqCycles);
  EXPECT_GT(d.sys_pj, 0.0);
}

TEST(Platform, AccelGatingStateFollowsUse) {
  Platform p;
  EXPECT_TRUE(p.fft_accel().gated());  // powered down until first use
  std::vector<fx::q15_t> x(64, 1000);
  p.fft_accel().cfft({x.size() / 2, cpu::CplxQ15{1000, 0}});
  EXPECT_FALSE(p.fft_accel().gated());
  p.fft_accel().set_gated(true);
  EXPECT_TRUE(p.fft_accel().gated());
}

TEST(Platform, EnginesHaveSeparateMeters) {
  Platform p;
  p.cpu().op(cpu::Op::kAlu, 50);
  EXPECT_GT(p.sys_meter().total_pj(), 0.0);
  EXPECT_EQ(p.vwr2a().meter().total_pj(), 0.0);
  EXPECT_EQ(p.accel_meter().total_pj(), 0.0);
}

TEST(Signal, RespirationIsDeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  dsp::RespirationParams prm;
  const auto xa = dsp::respiration(256, prm, a);
  const auto xb = dsp::respiration(256, prm, b);
  const auto xc = dsp::respiration(256, prm, c);
  EXPECT_EQ(xa, xb);
  EXPECT_NE(xa, xc);
}

TEST(Signal, RespirationStaysInRangeAndBreathes) {
  Rng rng(9);
  dsp::RespirationParams prm;
  const auto x = dsp::respiration(2048, prm, rng);
  double mx = -10, mn = 10;
  for (double v : x) {
    mx = std::max(mx, v);
    mn = std::min(mn, v);
  }
  EXPECT_LT(mx, 1.0);
  EXPECT_GT(mn, -1.0);
  EXPECT_GT(mx, 0.2);   // actual breathing amplitude
  EXPECT_LT(mn, -0.2);
}

TEST(Signal, BreathRateTracksParameter) {
  // Faster configured breathing produces more delineated maxima.
  Rng r1(11), r2(11);
  dsp::RespirationParams slow, fast;
  slow.breath_hz = 0.15;
  fast.breath_hz = 0.6;
  const auto taps = dsp::fir11_lowpass_q15();
  auto count_maxima = [&taps](const std::vector<std::int32_t>& x) {
    unsigned n = 0;
    for (const auto& e : dsp::delineate(dsp::fir_fx(x, taps), fx::to_q16_15(0.1))) {
      if (e.is_max) ++n;
    }
    return n;
  };
  const auto ns = count_maxima(dsp::respiration_q16_15(1024, slow, r1));
  const auto nf = count_maxima(dsp::respiration_q16_15(1024, fast, r2));
  EXPECT_GT(nf, 2 * ns);
}

TEST(Signal, MultitoneHasRequestedEnergySpread) {
  Rng rng(13);
  const auto x = dsp::multitone(512, 3, rng);
  double energy = 0;
  for (double v : x) energy += v * v;
  EXPECT_GT(energy, 1.0);
}

} // namespace
} // namespace vwr2a::soc
