// Inverse-FFT extension: bit-exact against the golden model and the
// fft -> ifft round trip property.

#include <gtest/gtest.h>

#include <cmath>

#include "bus/ahb.hpp"
#include "cgra/vwr2a.hpp"
#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "dsp/reference.hpp"
#include "energy/meter.hpp"
#include "kernels/fft.hpp"
#include "kernels/host.hpp"
#include "mem/sram.hpp"

namespace vwr2a::kernels {
namespace {

struct Rig {
  energy::EnergyMeter sys_meter;
  mem::SystemSram sram{sys_meter};
  bus::AhbBus ahb{sram, sys_meter};
  cgra::Vwr2a acc{ahb};
  Host host{acc, sram, nullptr};
  FftKernels fft{host};
  Rig() { fft.prepare(0); }
};

TEST(GoldenIfft, RoundTripRecoversSignal) {
  Rng rng(1);
  for (unsigned n : {16u, 256u, 1024u}) {
    std::vector<dsp::CplxFx> x(n);
    for (auto& v : x) {
      v = {fx::to_q16_15(rng.next_range(-0.5, 0.5)),
           fx::to_q16_15(rng.next_range(-0.5, 0.5))};
    }
    const auto back = dsp::pease_ifft_fx(dsp::pease_fft_fx(x));
    for (unsigned i = 0; i < n; ++i) {
      // Truncating fixed point: recovery within a small absolute error.
      EXPECT_NEAR(fx::from_q16_15(back[i].re), fx::from_q16_15(x[i].re), 5e-3);
      EXPECT_NEAR(fx::from_q16_15(back[i].im), fx::from_q16_15(x[i].im), 5e-3);
    }
  }
}

class IfftSizes : public ::testing::TestWithParam<unsigned> {};

TEST_P(IfftSizes, BitExactAgainstGolden) {
  const unsigned n = GetParam();
  Rig rig;
  Rng rng(n + 9);
  std::vector<dsp::CplxFx> x(n);
  const unsigned in = FftKernels::table_words();
  const unsigned out = in + 2 * n + 2;
  for (unsigned i = 0; i < n; ++i) {
    x[i] = {fx::to_q16_15(rng.next_range(-0.9, 0.9)),
            fx::to_q16_15(rng.next_range(-0.9, 0.9))};
    rig.sram.poke(in + 2 * i, static_cast<Word>(x[i].re));
    rig.sram.poke(in + 2 * i + 1, static_cast<Word>(x[i].im));
  }
  const auto stats = rig.fft.cifft(n, in, out);
  EXPECT_GT(stats.cycles, 0u);
  const auto golden = dsp::pease_ifft_fx(x);
  for (unsigned k = 0; k < n; ++k) {
    EXPECT_EQ(static_cast<std::int32_t>(rig.sram.peek(out + 2 * k)), golden[k].re)
        << "re " << k;
    EXPECT_EQ(static_cast<std::int32_t>(rig.sram.peek(out + 2 * k + 1)),
              golden[k].im)
        << "im " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IfftSizes, ::testing::Values(256u, 512u, 1024u));

TEST(Ifft, FftThenIfftOnHardwareRecoversSignal) {
  const unsigned n = 512;
  Rig rig;
  Rng rng(77);
  const unsigned in = FftKernels::table_words();
  const unsigned mid = in + 2 * n + 2;
  const unsigned out = mid + 2 * n + 2;
  std::vector<double> ref(2 * n);
  for (unsigned i = 0; i < 2 * n; ++i) {
    ref[i] = rng.next_range(-0.5, 0.5);
    rig.sram.poke(in + i, static_cast<Word>(fx::to_q16_15(ref[i])));
  }
  rig.fft.cfft(n, in, mid, out + 4 * n);
  rig.fft.cifft(n, mid, out);
  for (unsigned i = 0; i < 2 * n; ++i) {
    const auto v = static_cast<std::int32_t>(rig.sram.peek(out + i));
    EXPECT_NEAR(fx::from_q16_15(v), ref[i], 6e-3) << i;
  }
}

} // namespace
} // namespace vwr2a::kernels
