// Column execution semantics: end-of-cycle register commit, neighbour
// operands, branch behaviour, structural-hazard detection, MXCU index
// arithmetic, LSU pointer addressing, the shuffle unit as seen from the
// pipeline, and the ALU itself.

#include <gtest/gtest.h>

#include "bus/ahb.hpp"
#include "casm/builder.hpp"
#include "casm/factories.hpp"
#include "cgra/alu.hpp"
#include "cgra/shuffle.hpp"
#include "cgra/vwr2a.hpp"
#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "energy/meter.hpp"
#include "mem/sram.hpp"

namespace vwr2a::cgra {
namespace {

using namespace casm;

struct Rig {
  energy::EnergyMeter sys_meter;
  mem::SystemSram sram{sys_meter};
  bus::AhbBus ahb{sram, sys_meter};
  Vwr2a acc{ahb};

  Cycle run(const isa::ColumnProgram& prog, unsigned col = 0) {
    const unsigned id =
        acc.register_kernel(make_kernel("t", col, prog));
    return acc.run_kernel(id);
  }
};

// --- ALU semantics -----------------------------------------------------------

TEST(Alu, SignedArithmeticAndLogic) {
  using isa::RcOp;
  EXPECT_EQ(alu_eval(RcOp::kSadd, 5, Word(-3)), 2u);
  EXPECT_EQ(alu_eval(RcOp::kSsub, 5, 7), Word(-2));
  EXPECT_EQ(alu_eval(RcOp::kSmul, Word(-4), 3), Word(-12));
  EXPECT_EQ(alu_eval(RcOp::kSll, 1, 31), 0x80000000u);
  EXPECT_EQ(alu_eval(RcOp::kSrl, 0x80000000u, 31), 1u);
  EXPECT_EQ(alu_eval(RcOp::kSra, Word(-8), 2), Word(-2));
  EXPECT_EQ(alu_eval(RcOp::kLand, 0xF0F0u, 0xFF00u), 0xF000u);
  EXPECT_EQ(alu_eval(RcOp::kLxor, 0xFFFFu, 0x0F0Fu), 0xF0F0u);
  EXPECT_EQ(alu_eval(RcOp::kLnot, 0u, 0), 0xFFFFFFFFu);
  EXPECT_EQ(alu_eval(RcOp::kCmpLt, Word(-1), 0), 1u);
  EXPECT_EQ(alu_eval(RcOp::kCmpLe, 3, 3), 1u);
  EXPECT_EQ(alu_eval(RcOp::kMax, Word(-5), 2), 2u);
  EXPECT_EQ(alu_eval(RcOp::kMin, Word(-5), 2), Word(-5));
  EXPECT_EQ(alu_eval(RcOp::kAbs, Word(-7), 0), 7u);
  EXPECT_EQ(alu_eval(RcOp::kAbs, 0x80000000u, 0), 0x7FFFFFFFu);
}

TEST(Alu, FixedPointMultiplyDropsSixteenBits) {
  // (a*b) >> 16 on the 64-bit product (paper Sec 3.1).
  const std::int32_t a = fx::to_q16_15(1.5);     // data 16.15
  const std::int32_t w = fx::to_coeff(0.5);      // coefficient q.16
  const Word r = alu_eval(isa::RcOp::kFxpMul, static_cast<Word>(a),
                          static_cast<Word>(w));
  EXPECT_EQ(static_cast<std::int32_t>(r), fx::to_q16_15(0.75));
}

TEST(Alu, MulWrapsLow32) {
  EXPECT_EQ(alu_eval(isa::RcOp::kSmul, 0x10000u, 0x10000u), 0u);
}

TEST(Alu, Simd16TwoLanes) {
  const Word a = (5u << 16) | 0xFFFEu;  // lanes: hi=5, lo=-2
  const Word b = (3u << 16) | 0x0004u;
  const Word s = alu_eval_simd16(isa::RcOp::kSadd, a, b);
  EXPECT_EQ(s >> 16, 8u);
  EXPECT_EQ(static_cast<std::int16_t>(s & 0xFFFF), 2);
}

// --- shuffle unit --------------------------------------------------------------

class ShuffleModes : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShuffleModes, SourceIndexIsWithinConcat) {
  const auto mode = static_cast<isa::ShufMode>(GetParam());
  for (unsigned i = 0; i < 128; ++i) {
    EXPECT_LT(shuffle_source_index(mode, i), 256u);
  }
}

TEST_P(ShuffleModes, MatchesIndexMap) {
  const auto mode = static_cast<isa::ShufMode>(GetParam());
  Rng rng(GetParam());
  VwrRow a, b;
  for (auto& v : a) v = rng.next_u32();
  for (auto& v : b) v = rng.next_u32();
  const VwrRow out = shuffle_eval(mode, a, b);
  for (unsigned i = 0; i < 128; ++i) {
    const unsigned s = shuffle_source_index(mode, i);
    EXPECT_EQ(out[i], s < 128 ? a[s] : b[s - 128]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, ShuffleModes, ::testing::Range(0u, 8u));

TEST(Shuffle, InterleaveHalvesArePermutation) {
  VwrRow a, b;
  for (unsigned i = 0; i < 128; ++i) {
    a[i] = i;
    b[i] = 128 + i;
  }
  const VwrRow lo = shuffle_eval(isa::ShufMode::kInterleaveLo, a, b);
  const VwrRow hi = shuffle_eval(isa::ShufMode::kInterleaveHi, a, b);
  std::array<bool, 256> seen{};
  for (unsigned i = 0; i < 128; ++i) {
    seen[lo[i]] = true;
    seen[hi[i]] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
  EXPECT_EQ(lo[0], 0u);
  EXPECT_EQ(lo[1], 128u);  // A0, B0, A1, B1, ...
}

TEST(Shuffle, EvenOddPruneComplement) {
  VwrRow a, b;
  for (unsigned i = 0; i < 128; ++i) {
    a[i] = i;
    b[i] = 1000 + i;
  }
  const VwrRow ev = shuffle_eval(isa::ShufMode::kEvenPrune, a, b);
  const VwrRow od = shuffle_eval(isa::ShufMode::kOddPrune, a, b);
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_EQ(ev[i], 2 * i);
    EXPECT_EQ(od[i], 2 * i + 1);
    EXPECT_EQ(ev[64 + i], 1000 + 2 * i);
    EXPECT_EQ(od[64 + i], 1000 + 2 * i + 1);
  }
}

TEST(Shuffle, CircularShiftMovesUpper32Down) {
  VwrRow a, b;
  for (unsigned i = 0; i < 128; ++i) {
    a[i] = i;
    b[i] = 128 + i;
  }
  const VwrRow lo = shuffle_eval(isa::ShufMode::kCircShiftLo, a, b);
  EXPECT_EQ(lo[0], 32u);    // concat shifted up by 32
  EXPECT_EQ(lo[95], 127u);
  EXPECT_EQ(lo[96], 128u);  // wraps into B
}

TEST(Shuffle, BitRevIsInvolutionOverConcat) {
  VwrRow a, b;
  Rng rng(3);
  for (auto& v : a) v = rng.next_u32();
  for (auto& v : b) v = rng.next_u32();
  const VwrRow lo = shuffle_eval(isa::ShufMode::kBitRevLo, a, b);
  const VwrRow hi = shuffle_eval(isa::ShufMode::kBitRevHi, a, b);
  // Applying bitrev twice restores the concatenation.
  const VwrRow lo2 = shuffle_eval(isa::ShufMode::kBitRevLo, lo, hi);
  const VwrRow hi2 = shuffle_eval(isa::ShufMode::kBitRevHi, lo, hi);
  EXPECT_EQ(lo2, a);
  EXPECT_EQ(hi2, b);
}

// --- column semantics ------------------------------------------------------------

TEST(Column, NeighbourReadsArePreviousCycle) {
  // RC0 computes 7 in cycle 0; RC1 reads RCU (=RC0's out) in cycle 1.
  Rig rig;
  ProgramBuilder pb;
  pb.line().rc(0, rc_op(isa::RcOp::kSadd, isa::RcDst::kR0, isa::RcSrc::kImm,
                        isa::RcSrc::kZero, 0, 7)).emit();
  pb.line().rc(1, rc_mv(isa::RcDst::kR0, isa::RcSrc::kRcUp)).emit();
  pb.line().lcu(lcu_exit()).emit();
  rig.run(pb.build());
  EXPECT_EQ(rig.acc.column(0).rc_state(0).rf[0], 7u);
  EXPECT_EQ(rig.acc.column(0).rc_state(1).rf[0], 7u);
}

TEST(Column, NeighbourWrapsAround) {
  Rig rig;
  ProgramBuilder pb;
  pb.line().rc(3, rc_op(isa::RcOp::kSadd, isa::RcDst::kR0, isa::RcSrc::kImm,
                        isa::RcSrc::kZero, 0, 9)).emit();
  pb.line().rc(0, rc_mv(isa::RcDst::kR0, isa::RcSrc::kRcUp)).emit();  // RC0 up = RC3
  pb.line().lcu(lcu_exit()).emit();
  rig.run(pb.build());
  EXPECT_EQ(rig.acc.column(0).rc_state(0).rf[0], 9u);
}

TEST(Column, MxcuIndexWrapsMod32) {
  Rig rig;
  ProgramBuilder pb;
  pb.line().mxcu(mxcu_set_idx(31)).emit();
  pb.line().mxcu(mxcu_add_idx(3)).emit();
  pb.line().lcu(lcu_exit()).emit();
  rig.run(pb.build());
  EXPECT_EQ(rig.acc.column(0).mxcu_index(), 2u);  // (31 + 3) mod 32
}

TEST(Column, DbnzLoopsExactly) {
  Rig rig;
  ProgramBuilder pb;
  pb.line().lcu(lcu_set(0, 5)).emit();
  Label l = pb.make_label();
  pb.bind(l);
  pb.line().rc(0, rc_add(isa::RcDst::kR1, isa::RcSrc::kR1, isa::RcSrc::kOne))
      .lcu(lcu_dbnz(0), l).emit();
  pb.line().lcu(lcu_exit()).emit();
  rig.run(pb.build());
  EXPECT_EQ(rig.acc.column(0).rc_state(0).rf[1], 5u);
}

TEST(Column, LsuPointerPostIncrement) {
  Rig rig;
  for (unsigned i = 0; i < 4; ++i) rig.acc.spm().poke(100 + 2 * i, 10 + i);
  ProgramBuilder pb;
  pb.line().lcu(lcu_set(0, 100)).emit();
  pb.line().lcu(lcu_st_srf(0, 0)).emit();          // SRF0 = 100
  pb.line().lsu(lsu_setptr(0, 0, 0)).emit();       // P0 = 100
  for (int k = 0; k < 4; ++k) {
    pb.line().lsu(lsu_ld_srf_ptr(1, 0, 2)).emit(); // SRF1 = [P0], P0 += 2
    pb.line().lcu(lcu_mv_srf(1, 1)).emit();
  }
  pb.line().lcu(lcu_exit()).emit();
  rig.run(pb.build());
  EXPECT_EQ(rig.acc.column(0).lcu_reg(1), 13u);    // last loaded value
  EXPECT_EQ(rig.acc.column(0).lsu_ptr(0), 108u);
}

TEST(Column, SrfPortConflictThrows) {
  // Two RCs read different SRF entries in the same cycle: single port.
  Rig rig;
  ProgramBuilder pb;
  pb.line()
      .rc(0, rc_mv(isa::RcDst::kR0, isa::RcSrc::kSrf, 1))
      .rc(1, rc_mv(isa::RcDst::kR0, isa::RcSrc::kSrf, 2))
      .emit();
  pb.line().lcu(lcu_exit()).emit();
  EXPECT_THROW(rig.run(pb.build()), StructuralHazard);
}

TEST(Column, SrfBroadcastReadIsLegal) {
  // All four RCs reading the SAME SRF entry share the broadcast.
  Rig rig;
  rig.acc.host_write_srf(0, 3, 42);
  ProgramBuilder pb;
  pb.line().rc_all(rc_mv(isa::RcDst::kR0, isa::RcSrc::kSrf, 3)).emit();
  pb.line().lcu(lcu_exit()).emit();
  rig.run(pb.build());
  for (unsigned r = 0; r < 4; ++r) {
    EXPECT_EQ(rig.acc.column(0).rc_state(r).rf[0], 42u);
  }
}

TEST(Column, VwrRowPlusWordWriteThrows) {
  // LSU row-loads VWR A while an RC writes a word of A: one write port.
  Rig rig;
  ProgramBuilder pb;
  pb.line()
      .lsu(lsu_ld_vwr(VwrSel::A, 0))
      .rc(0, rc_mv(isa::RcDst::kVwrA, isa::RcSrc::kOne))
      .emit();
  pb.line().lcu(lcu_exit()).emit();
  EXPECT_THROW(rig.run(pb.build()), StructuralHazard);
}

TEST(Column, RcSliceWritesAreDisjointAndLegal) {
  Rig rig;
  ProgramBuilder pb;
  pb.line().mxcu(mxcu_set_idx(4)).emit();
  pb.line().rc_all(rc_mv(isa::RcDst::kVwrB, isa::RcSrc::kOne)).emit();
  pb.line().lcu(lcu_exit()).emit();
  rig.run(pb.build());
  for (unsigned r = 0; r < 4; ++r) {
    EXPECT_EQ(rig.acc.column(0).vwr(VwrSel::B).peek(r, 4), 1u);
  }
}

TEST(Column, MissingExitThrows) {
  Rig rig;
  ProgramBuilder pb;
  pb.line().rc(0, rc_mv(isa::RcDst::kR0, isa::RcSrc::kOne)).emit();
  EXPECT_THROW(rig.run(pb.build()), SimError);
}

TEST(Column, CrossColumnReadsNeedSyncedPartner) {
  Rig rig;
  ProgramBuilder pb;
  pb.line().rc(0, rc_mv(isa::RcDst::kR0, isa::RcSrc::kRcCross)).emit();
  pb.line().lcu(lcu_exit()).emit();
  EXPECT_THROW(rig.run(pb.build()), SimError);
}

TEST(Column, CrossColumnReadsWorkWhenSynced) {
  Rig rig;
  ProgramBuilder pb0;
  pb0.line().rc(2, rc_op(isa::RcOp::kSadd, isa::RcDst::kR0, isa::RcSrc::kImm,
                         isa::RcSrc::kZero, 0, 21)).emit();
  pb0.line().lcu(lcu_nop()).emit();
  pb0.line().lcu(lcu_exit()).emit();
  ProgramBuilder pb1;
  pb1.line().lcu(lcu_nop()).emit();
  pb1.line().rc(2, rc_mv(isa::RcDst::kR1, isa::RcSrc::kRcCross)).emit();
  pb1.line().lcu(lcu_exit()).emit();
  const unsigned id = rig.acc.register_kernel(
      make_kernel2("cross", pb0.build(), pb1.build()));
  rig.acc.run_kernel(id);
  EXPECT_EQ(rig.acc.column(1).rc_state(2).rf[1], 21u);
}

TEST(Column, OperandIsolationKeepsNopQuiet) {
  // A NOP-only program charges fetches but no ALU or register-file events.
  Rig rig;
  ProgramBuilder pb;
  pb.line().emit();
  pb.line().lcu(lcu_exit()).emit();
  rig.run(pb.build());
  EXPECT_EQ(rig.acc.meter().count(energy::Event::kAluOp), 0u);
  EXPECT_EQ(rig.acc.meter().count(energy::Event::kRcRfRead), 0u);
  EXPECT_GT(rig.acc.meter().count(energy::Event::kInstrFetchRc), 0u);
}

TEST(Column, ConfigReloadOnlyWhenKernelChanges) {
  Rig rig;
  ProgramBuilder pb;
  pb.line().lcu(lcu_exit()).emit();
  const unsigned a = rig.acc.register_kernel(make_kernel("a", 0, pb.build()));
  const unsigned b = rig.acc.register_kernel(make_kernel("b", 0, pb.build()));
  rig.acc.run_kernel(a);
  const auto words_after_first = rig.acc.meter().count(energy::Event::kConfigWord);
  rig.acc.run_kernel(a);  // cached: no reload
  EXPECT_EQ(rig.acc.meter().count(energy::Event::kConfigWord), words_after_first);
  rig.acc.run_kernel(b);  // different kernel: reload
  EXPECT_GT(rig.acc.meter().count(energy::Event::kConfigWord), words_after_first);
}

TEST(Column, BranchTakesEffectNextCycle) {
  Rig rig;
  ProgramBuilder pb;
  Label skip = pb.make_label();
  pb.line().lcu(lcu_b(), skip).emit();
  pb.line().rc(0, rc_mv(isa::RcDst::kR0, isa::RcSrc::kOne)).emit();  // skipped
  pb.bind(skip);
  pb.line().lcu(lcu_exit()).emit();
  rig.run(pb.build());
  EXPECT_EQ(rig.acc.column(0).rc_state(0).rf[0], 0u);
}

} // namespace
} // namespace vwr2a::cgra
