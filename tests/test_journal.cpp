// Black-box journal (.vwr2jrn): record a live gateway soak under an
// injectable clock, validate the loaded record stream and digests, replay
// it bit-exactly onto a *different* fleet shape, and prove the loader
// rejects -- cleanly, never a crash or over-read -- every single-bit flip
// and every truncation of the file.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "dsp/signal.hpp"
#include "gateway/client.hpp"
#include "gateway/server.hpp"
#include "obs/journal.hpp"
#include "obs/journal_replay.hpp"

namespace vwr2a::obs {
namespace {

constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fold_fnv(std::uint64_t h, const std::vector<std::int32_t>& out) {
  for (std::int32_t w : out) {
    h = (h ^ static_cast<std::uint32_t>(w)) * kFnvPrime;
  }
  return h;
}

std::vector<std::int32_t> make_signal(unsigned windows, unsigned seed) {
  dsp::RespirationParams p;
  p.breath_hz = 0.2;
  Rng rng(seed);
  return dsp::respiration_q16_15(windows * 512, p, rng);
}

struct Recorded {
  std::string path;
  std::vector<std::uint32_t> sids;     ///< client-chosen stream ids
  std::vector<std::uint64_t> fnv;      ///< per stream, client-side truth
  std::vector<std::uint64_t> windows;  ///< per stream
};

/// Drives kStreams x kWindows through a journaling loopback gateway under
/// a fake nanosecond clock and returns the journal path plus the
/// client-side output digests.
Recorded record_soak(const std::string& path, unsigned devices) {
  constexpr unsigned kStreams = 3;
  constexpr unsigned kWindows = 2;

  std::atomic<std::uint64_t> fake_ns{1'000'000'000};
  gateway::Server::Config cfg;
  cfg.stream.pool.devices = devices;
  cfg.journal_path = path;
  cfg.clock_ns = [&fake_ns] { return fake_ns.fetch_add(1000) + 1000; };
  gateway::Server server(cfg);
  gateway::Client client(server.connect_loopback());

  Recorded rec;
  rec.path = path;
  rec.fnv.assign(kStreams, kFnvBasis);
  rec.windows.assign(kStreams, 0);
  for (unsigned i = 0; i < kStreams; ++i) {
    gateway::Client::StreamOpts opts;
    opts.tenant = i;
    if (i == 1) opts.kind = 1;
    rec.sids.push_back(
        client.open(opts, [&rec, i](const gateway::WindowResult& wr) {
          rec.fnv[i] = fold_fnv(rec.fnv[i], wr.output);
          ++rec.windows[i];
        }));
  }
  for (unsigned i = 0; i < kStreams; ++i) {
    const std::vector<std::int32_t> sig = make_signal(kWindows, 9100 + i);
    client.push(rec.sids[i], sig);
  }
  for (std::uint32_t sid : rec.sids) client.flush(sid);
  for (std::uint32_t sid : rec.sids) client.close_stream(sid);
  client.close();
  server.stop();  // finalizes the journal
  return rec;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(b.data()),
           static_cast<std::streamsize>(b.size()));
}

TEST(Journal, RecordsValidatedTrafficWithInjectedClockAndDigests) {
  const std::string path = ::testing::TempDir() + "journal_record.vwr2jrn";
  const Recorded rec = record_soak(path, 2);

  JournalFile jf;
  std::string why;
  ASSERT_TRUE(load_journal(path, &jf, &why)) << why;
  EXPECT_EQ(jf.protocol, gateway::kProtocolVersion);

  // One connection: open first, close last, every frame in between carries
  // its id; global sequence numbers are 0..n-1 (the loader enforces the
  // ordering, we spot-check the endpoints).
  ASSERT_GE(jf.records.size(), 3u);
  EXPECT_EQ(jf.records.front().kind, JournalRecord::kConnOpen);
  EXPECT_EQ(jf.records.back().kind, JournalRecord::kConnClose);
  EXPECT_EQ(jf.records.front().seq, 0u);
  EXPECT_EQ(jf.records.back().seq, jf.records.size() - 1);
  std::size_t frames = 0;
  std::uint64_t prev_ts = 0;
  for (const JournalRecord& r : jf.records) {
    EXPECT_EQ(r.conn, jf.records.front().conn);
    // The injected clock ticks 1 us per read and started at 1 s, so every
    // timestamp is a fake-clock value, not wall time.
    EXPECT_GE(r.ts_ns, 1'000'000'000u);
    EXPECT_LT(r.ts_ns, 2'000'000'000u);
    EXPECT_GE(r.ts_ns, prev_ts);  // one reader: arrival order is time order
    prev_ts = r.ts_ns;
    if (r.kind == JournalRecord::kFrame) {
      ++frames;
      // Each recorded frame is one canonical wire frame: the codec decodes
      // it completely and leaves nothing behind.
      gateway::Decoder dec;
      dec.feed(r.bytes);
      EXPECT_TRUE(dec.next().has_value());
      EXPECT_FALSE(dec.next().has_value());
    } else {
      EXPECT_TRUE(r.bytes.empty());
    }
  }
  // 3 opens + 3 pushes + 3 flushes + 3 closes (+ the client teardown's
  // extras, if any) -- at minimum the 12 stream frames.
  EXPECT_GE(frames, 12u);

  // Digests carry the exact client-observed output identity.
  ASSERT_EQ(jf.digests.size(), 3u);
  for (const JournalDigest& d : jf.digests) {
    std::size_t idx = rec.sids.size();
    for (std::size_t i = 0; i < rec.sids.size(); ++i) {
      if (rec.sids[i] == d.stream) idx = i;
    }
    ASSERT_LT(idx, rec.sids.size()) << "unknown stream " << d.stream;
    EXPECT_EQ(d.windows, rec.windows[idx]);
    EXPECT_EQ(d.fnv, rec.fnv[idx]);
  }
}

TEST(Journal, ReplayReproducesEveryStreamOnADifferentFleet) {
  const std::string path = ::testing::TempDir() + "journal_replay.vwr2jrn";
  record_soak(path, 2);

  JournalFile jf;
  std::string why;
  ASSERT_TRUE(load_journal(path, &jf, &why)) << why;

  // Replay against 3 devices (recorded on 2): output identity is the
  // repo's core invariant, so the digests must still match exactly.
  gateway::Server::Config cfg;
  cfg.stream.pool.devices = 3;
  gateway::Server server(cfg);
  JournalReplayer replayer(server);
  const ReplayReport rep = replayer.replay(jf);
  server.stop();

  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.connections, 1u);
  ASSERT_EQ(rep.streams.size(), 3u);
  for (const ReplayStream& s : rep.streams) {
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.got_windows, s.expected_windows);
    EXPECT_EQ(s.got_fnv, s.expected_fnv);
  }
}

TEST(Journal, ReplayerRefusesProtocolMismatch) {
  const std::string path = ::testing::TempDir() + "journal_proto.vwr2jrn";
  record_soak(path, 1);
  JournalFile jf;
  ASSERT_TRUE(load_journal(path, &jf));
  jf.protocol = gateway::kProtocolVersion + 1;

  gateway::Server::Config cfg;
  cfg.stream.pool.devices = 1;
  gateway::Server server(cfg);
  JournalReplayer replayer(server);
  const ReplayReport rep = replayer.replay(jf);
  server.stop();
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("protocol"), std::string::npos);
}

TEST(Journal, EverySingleBitFlipRejectsCleanly) {
  const std::string path = ::testing::TempDir() + "journal_fuzz.vwr2jrn";
  record_soak(path, 1);
  const std::vector<std::uint8_t> good = read_file(path);
  ASSERT_GE(good.size(), 48u);
  JournalFile jf;
  ASSERT_TRUE(load_journal(path, &jf));

  const std::string mut = ::testing::TempDir() + "journal_fuzz_mut.vwr2jrn";
  // Exhaustive over the header and the trailer neighborhood (the
  // structured regions), strided across the bulk so the sweep stays fast
  // while still touching every region of every record.
  const std::size_t stride = good.size() > 4096 ? good.size() / 2048 : 1;
  std::size_t tried = 0;
  auto try_byte = [&](std::size_t at) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bad = good;
      bad[at] = static_cast<std::uint8_t>(bad[at] ^ (1u << bit));
      write_file(mut, bad);
      JournalFile out;
      std::string why;
      ASSERT_FALSE(load_journal(mut, &out, &why))
          << "bit " << bit << " of byte " << at << " accepted";
      EXPECT_FALSE(why.empty());
      ++tried;
    }
  };
  for (std::size_t at = 0; at < 48; ++at) try_byte(at);
  for (std::size_t at = good.size() - 64; at < good.size(); ++at) {
    try_byte(at);
  }
  for (std::size_t at = 48; at < good.size() - 64; at += stride) {
    try_byte(at);
  }
  std::remove(mut.c_str());
  EXPECT_GE(tried, (48u + 64u) * 8u);
}

TEST(Journal, EveryTruncationRejectsCleanly) {
  const std::string path = ::testing::TempDir() + "journal_trunc.vwr2jrn";
  record_soak(path, 1);
  const std::vector<std::uint8_t> good = read_file(path);
  ASSERT_GE(good.size(), 48u);

  const std::string mut = ::testing::TempDir() + "journal_trunc_mut.vwr2jrn";
  const std::size_t stride = good.size() > 4096 ? good.size() / 2048 : 1;
  auto try_len = [&](std::size_t len) {
    std::vector<std::uint8_t> bad(good.begin(),
                                  good.begin() + static_cast<long>(len));
    write_file(mut, bad);
    JournalFile out;
    std::string why;
    ASSERT_FALSE(load_journal(mut, &out, &why)) << "length " << len
                                                << " accepted";
  };
  // Every boundary-ish length exhaustively, the middle strided.
  for (std::size_t len = 0; len < std::min<std::size_t>(96, good.size());
       ++len) {
    try_len(len);
  }
  for (std::size_t len = good.size() - 1;
       len > good.size() - std::min<std::size_t>(64, good.size()); --len) {
    try_len(len);
  }
  for (std::size_t len = 96; len + 64 < good.size(); len += stride) {
    try_len(len);
  }
  // Trailing garbage is a size mismatch too.
  std::vector<std::uint8_t> grown = good;
  grown.push_back(0);
  write_file(mut, grown);
  JournalFile out;
  ASSERT_FALSE(load_journal(mut, &out));
  std::remove(mut.c_str());

  // And the pristine bytes still load -- the harness itself is sound.
  write_file(mut, good);
  ASSERT_TRUE(load_journal(mut, &out));
  std::remove(mut.c_str());
}

TEST(Journal, UnwritableJournalPathFailsServerConstructionFast) {
  gateway::Server::Config cfg;
  cfg.stream.pool.devices = 1;
  cfg.journal_path = "/nonexistent_dir_vwr2a/journal.vwr2jrn";
  EXPECT_THROW({ gateway::Server server(cfg); }, HostError);
}

} // namespace
} // namespace vwr2a::obs
