// Kernel assembler: builder semantics (labels, program-memory limit) and
// the textual format's print -> parse round trip, including on every
// generated production kernel.

#include <gtest/gtest.h>

#include "bus/ahb.hpp"
#include "casm/builder.hpp"
#include "casm/factories.hpp"
#include "casm/text.hpp"
#include "cgra/vwr2a.hpp"
#include "common/status.hpp"
#include "dsp/signal.hpp"
#include "energy/meter.hpp"
#include "kernels/delineation.hpp"
#include "kernels/fft.hpp"
#include "kernels/fir.hpp"
#include "kernels/host.hpp"
#include "kernels/reduce.hpp"
#include "mem/sram.hpp"

namespace vwr2a::casm {
namespace {

TEST(Builder, LabelsResolveForwardAndBackward) {
  ProgramBuilder pb;
  Label fwd = pb.make_label();
  Label back = pb.make_label();
  pb.bind(back);
  pb.line().lcu(lcu_b(), fwd).emit();        // line 0 -> 2
  pb.line().lcu(lcu_b(), back).emit();       // line 1 -> 0
  pb.bind(fwd);
  pb.line().lcu(lcu_exit()).emit();          // line 2
  const auto prog = pb.build();
  EXPECT_EQ(isa::decode_lcu(prog.word(Slot::LCU, 0)).target, 2u);
  EXPECT_EQ(isa::decode_lcu(prog.word(Slot::LCU, 1)).target, 0u);
}

TEST(Builder, UnboundLabelThrows) {
  ProgramBuilder pb;
  Label l = pb.make_label();
  pb.line().lcu(lcu_b(), l).emit();
  EXPECT_THROW(pb.build(), AsmError);
}

TEST(Builder, ProgramMemoryLimitEnforced) {
  ProgramBuilder pb;
  for (unsigned i = 0; i < 65; ++i) pb.line().emit();
  EXPECT_THROW(pb.build(), AsmError);
}

TEST(Builder, TwoColumnKernelsNeedEqualLength) {
  ProgramBuilder a, b;
  a.line().lcu(lcu_exit()).emit();
  b.line().emit();
  b.line().lcu(lcu_exit()).emit();
  EXPECT_THROW(make_kernel2("x", a.build(), b.build()), AsmError);
}

TEST(Text, ParserRejectsGarbage) {
  EXPECT_THROW(parse_program("rc9: nop"), AsmError);
  EXPECT_THROW(parse_program("lcu: frobnicate r0"), AsmError);
  EXPECT_THROW(parse_program("lsu: ld.vwr D, [0]"), AsmError);
  EXPECT_THROW(parse_program("rc0: sadd vwrc, vwra"), AsmError);
}

TEST(Text, ParsesSparseLines) {
  const auto prog = parse_program(
      "; comment only\n"
      "lcu: seti r1, #5 | rc2: sadd r0, r0, #1\n"
      "rc*: mv vwrc, srf3\n"
      "lcu: exit\n");
  EXPECT_EQ(prog.length(), 3u);
  EXPECT_EQ(isa::decode_lcu(prog.word(Slot::LCU, 0)).imm, 5);
  EXPECT_EQ(isa::decode_rc(prog.word(Slot::RC1, 1)).srf, 3u);
}

/// Round trip helper: print, parse, compare encoded words.
void expect_roundtrip(const isa::ColumnProgram& prog, const std::string& name) {
  const std::string text = to_text(prog);
  isa::ColumnProgram reparsed;
  ASSERT_NO_THROW(reparsed = parse_program(text)) << name << "\n" << text;
  EXPECT_EQ(reparsed, prog) << name << "\n" << text;
}

TEST(Text, RoundTripsAllProductionKernels) {
  // Instantiate every kernel family and round-trip every registered image.
  energy::EnergyMeter m;
  mem::SystemSram sram(m);
  bus::AhbBus ahb(sram, m);
  cgra::Vwr2a acc(ahb);
  kernels::Host host(acc, sram, nullptr);
  kernels::FftKernels fft(host);
  kernels::FirKernels fir(host);
  kernels::ReduceKernels red(host);
  kernels::DelineationKernels del(host);
  fft.prepare(0);
  fir.prepare(0);
  // Touch the lazily-built kernels.
  for (unsigned i = 0; i < 300; ++i) sram.poke(100 + i, 0);
  fir.fir11(256, dsp::fir11_lowpass_q15(), 100, 400);
  red.sum_rows(4, 2);
  red.count_le_rows(4, 2, 0);
  red.zero_rows(4, 2);
  red.dot(4, 100, 6);
  del.run(256, 4, 1000, 0, 900);

  unsigned checked = 0;
  for (unsigned id = 0; id < acc.config_mem().size(); ++id) {
    const auto& img = acc.config_mem().kernel(id);
    for (unsigned c = 0; c < arch::kNumColumns; ++c) {
      if (!isa::contains(img.columns, c)) continue;
      expect_roundtrip(img.program[c], img.name + "/col" + std::to_string(c));
      ++checked;
    }
  }
  EXPECT_GE(checked, 10u);
}

} // namespace
} // namespace vwr2a::casm
