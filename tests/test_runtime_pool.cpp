// Runtime device pool: determinism across worker counts, bit-exactness
// against the fixed-point golden models, and kernel-image cache sharing.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "dsp/reference.hpp"
#include "dsp/signal.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/pool.hpp"

namespace vwr2a::runtime {
namespace {

/// A reproducible mixed job set: FIR-11 at several sizes plus complex FFTs,
/// with per-job distinct inputs so result mix-ups are detectable.
std::vector<Job> make_mixed_jobs(unsigned count, unsigned seed) {
  Rng rng(seed);
  const auto taps = make_buffer(dsp::fir11_lowpass_q15());
  std::vector<Job> jobs;
  jobs.reserve(count);
  for (unsigned j = 0; j < count; ++j) {
    if (j % 4 == 3) {
      std::vector<std::int32_t> x(2 * 256);
      for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.4, 0.4));
      jobs.push_back(Job{CfftJob{256, make_buffer(std::move(x))},
                         "cfft#" + std::to_string(j)});
    } else {
      const unsigned n = 64 + 32 * (j % 3);
      std::vector<std::int32_t> x(n);
      for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.9, 0.9));
      jobs.push_back(Job{FirJob{n, taps, make_buffer(std::move(x))},
                         "fir#" + std::to_string(j)});
    }
  }
  return jobs;
}

/// A reproducible batch spanning the whole catalog, with a deterministic
/// mix of round-robin and pinned jobs.
std::vector<Job> make_catalog_jobs(unsigned count, unsigned seed,
                                   unsigned devices) {
  Rng rng(seed);
  const auto taps = make_buffer(dsp::fir11_lowpass_q15());
  std::vector<Job> jobs;
  jobs.reserve(count);
  for (unsigned j = 0; j < count; ++j) {
    Job job;
    switch (j % 5) {
      case 0: {
        std::vector<std::int32_t> x(128);
        for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.9, 0.9));
        job.work = FirJob{128, taps, make_buffer(std::move(x))};
        break;
      }
      case 1: {
        std::vector<std::int32_t> x(2 * 256);
        for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.4, 0.4));
        job.work = CfftJob{256, make_buffer(std::move(x))};
        break;
      }
      case 2: {
        std::vector<std::int32_t> x(512);
        for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.4, 0.4));
        job.work = RfftJob{512, make_buffer(std::move(x))};
        break;
      }
      case 3: {
        std::vector<std::int32_t> x(256);
        for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.9, 0.9));
        job.work = ReduceJob{static_cast<ReduceOp>(j % 4), 256,
                             make_buffer(std::move(x))};
        break;
      }
      default: {
        dsp::RespirationParams p;
        Rng sig(seed + j);
        job.work = DelineationJob{256, fx::to_q16_15(0.1),
                                  make_buffer(dsp::respiration_q16_15(256, p, sig))};
        break;
      }
    }
    job.tag = "job#" + std::to_string(j);
    if (j % 3 == 0) job.pin = static_cast<int>(j % devices);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<JobResult> run_all(unsigned devices, unsigned workers,
                               const std::vector<Job>& jobs,
                               std::vector<soc::ArchConfig> device_arch = {}) {
  DevicePool::Config cfg;
  cfg.devices = devices;
  cfg.workers = workers;
  cfg.device_arch = std::move(device_arch);
  DevicePool pool(cfg);
  auto handles = pool.submit_batch(jobs);
  std::vector<JobResult> results;
  results.reserve(handles.size());
  for (auto& h : handles) results.push_back(h.get());
  return results;
}

TEST(RuntimeDeterminism, ResultsIndependentOfWorkerCount) {
  const auto jobs = make_mixed_jobs(24, 11);
  const auto base = run_all(4, 1, jobs);
  for (unsigned workers : {2u, 8u}) {
    const auto got = run_all(4, workers, jobs);
    ASSERT_EQ(got.size(), base.size()) << workers << " workers";
    for (std::size_t j = 0; j < base.size(); ++j) {
      SCOPED_TRACE("job " + std::to_string(j) + " with " +
                   std::to_string(workers) + " workers");
      EXPECT_EQ(got[j].seq, base[j].seq);
      EXPECT_EQ(got[j].device, base[j].device);
      EXPECT_EQ(got[j].output, base[j].output);  // bit-identical
      // Cycle- and energy-identical, engine by engine.
      EXPECT_EQ(got[j].cost.vwr2a_cycles, base[j].cost.vwr2a_cycles);
      EXPECT_EQ(got[j].cost.cpu_cycles, base[j].cost.cpu_cycles);
      EXPECT_EQ(got[j].cost.vwr2a_pj, base[j].cost.vwr2a_pj);
      EXPECT_EQ(got[j].cost.sys_pj, base[j].cost.sys_pj);
      EXPECT_EQ(got[j].launches, base[j].launches);
    }
  }
}

TEST(RuntimeDeterminism, SubmitMatchesSubmitBatch) {
  const auto jobs = make_mixed_jobs(12, 23);
  const auto batched = run_all(2, 2, jobs);

  DevicePool::Config cfg;
  cfg.devices = 2;
  DevicePool pool(cfg);
  std::vector<JobHandle> handles;
  for (const Job& job : jobs) handles.push_back(pool.submit(job));
  for (std::size_t j = 0; j < handles.size(); ++j) {
    JobResult r = handles[j].get();
    EXPECT_EQ(r.output, batched[j].output);
    EXPECT_EQ(r.cost.vwr2a_cycles, batched[j].cost.vwr2a_cycles);
    EXPECT_EQ(r.device, batched[j].device);
  }
}

TEST(RuntimePool, FirBitExactAgainstGolden) {
  Rng rng(5);
  const auto taps_vec = dsp::fir11_lowpass_q15();
  const auto taps = make_buffer(taps_vec);
  std::vector<std::vector<std::int32_t>> inputs;
  std::vector<Job> jobs;
  for (unsigned j = 0; j < 8; ++j) {
    const unsigned n = 100 + 13 * j;
    std::vector<std::int32_t> x(n);
    for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.9, 0.9));
    inputs.push_back(x);
    jobs.push_back(Job{FirJob{n, taps, make_buffer(std::move(x))}, ""});
  }
  DevicePool::Config cfg;
  cfg.devices = 3;
  DevicePool pool(cfg);
  auto handles = pool.submit_batch(std::move(jobs));
  for (std::size_t j = 0; j < handles.size(); ++j) {
    const JobResult r = handles[j].get();
    EXPECT_EQ(r.output, dsp::fir_fx(inputs[j], taps_vec)) << "job " << j;
  }
}

TEST(RuntimePool, CfftBitExactAgainstGolden) {
  Rng rng(6);
  const unsigned n = 256;
  std::vector<dsp::CplxFx> x(n);
  std::vector<std::int32_t> interleaved(2 * n);
  for (unsigned i = 0; i < n; ++i) {
    x[i].re = fx::to_q16_15(rng.next_range(-0.4, 0.4));
    x[i].im = fx::to_q16_15(rng.next_range(-0.4, 0.4));
    interleaved[2 * i] = x[i].re;
    interleaved[2 * i + 1] = x[i].im;
  }
  DevicePool pool;
  JobHandle h = pool.submit(Job{CfftJob{n, make_buffer(interleaved)}, ""});
  const JobResult r = h.get();
  const auto golden = dsp::pease_fft_fx(x);
  ASSERT_EQ(r.output.size(), 2 * n);
  for (unsigned k = 0; k < n; ++k) {
    EXPECT_EQ(r.output[2 * k], golden[k].re) << "bin " << k;
    EXPECT_EQ(r.output[2 * k + 1], golden[k].im) << "bin " << k;
  }
}

TEST(RuntimeDeterminism, HeterogeneousFleetIndependentOfWorkerCount) {
  // A mixed-variant fleet (baseline, 2-VWR, 4-VWR, SIMD16) serving a
  // catalog-wide batch with pinned and round-robin jobs must be bit- and
  // cycle-identical for 1, 2 and 4 workers.
  const std::vector<soc::ArchConfig> fleet = {
      soc::ArchConfig{},
      soc::ArchConfig{.vwr_count = 2},
      soc::ArchConfig{.vwr_count = 4},
      soc::ArchConfig{.simd_width = 16},
  };
  const auto jobs = make_catalog_jobs(20, 77, 4);
  const auto base = run_all(4, 1, jobs, fleet);
  for (unsigned workers : {2u, 4u}) {
    const auto got = run_all(4, workers, jobs, fleet);
    ASSERT_EQ(got.size(), base.size()) << workers << " workers";
    for (std::size_t j = 0; j < base.size(); ++j) {
      SCOPED_TRACE("job " + std::to_string(j) + " with " +
                   std::to_string(workers) + " workers");
      EXPECT_EQ(got[j].seq, base[j].seq);
      EXPECT_EQ(got[j].device, base[j].device);
      EXPECT_EQ(got[j].output, base[j].output);  // bit-identical
      EXPECT_EQ(got[j].cost.vwr2a_cycles, base[j].cost.vwr2a_cycles);
      EXPECT_EQ(got[j].cost.cpu_cycles, base[j].cost.cpu_cycles);
      EXPECT_EQ(got[j].cost.vwr2a_pj, base[j].cost.vwr2a_pj);
      EXPECT_EQ(got[j].cost.sys_pj, base[j].cost.sys_pj);
      EXPECT_EQ(got[j].launches, base[j].launches);
      // Pinned jobs landed where they were pinned.
      if (jobs[j].pin >= 0) {
        EXPECT_EQ(got[j].device, static_cast<unsigned>(jobs[j].pin));
      }
    }
  }
}

TEST(RuntimePool, PinnedJobsRouteToTheirDevice) {
  DevicePool::Config cfg;
  cfg.devices = 3;
  DevicePool pool(cfg);
  Rng rng(5);
  std::vector<std::int32_t> x(64);
  for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.9, 0.9));
  const auto taps = make_buffer(dsp::fir11_lowpass_q15());
  const auto buf = make_buffer(std::move(x));

  std::vector<JobHandle> handles;
  for (int d = 2; d >= 0; --d) {
    Job job{FirJob{64, taps, buf}, "pin" + std::to_string(d)};
    job.pin = d;
    handles.push_back(pool.submit(std::move(job)));
  }
  for (std::size_t i = 0; i < handles.size(); ++i) {
    EXPECT_EQ(handles[i].get().device, 2 - i);
  }

  // Out-of-range pins are rejected up front, batch-atomically.
  Job bad{FirJob{64, taps, buf}, "bad"};
  bad.pin = 3;
  EXPECT_THROW(pool.submit(bad), HostError);
  std::vector<Job> batch(2, Job{FirJob{64, taps, buf}, "ok"});
  batch.push_back(bad);
  EXPECT_THROW(pool.submit_batch(std::move(batch)), HostError);
  pool.wait_idle();
  EXPECT_EQ(pool.stats().jobs_completed, 3u);  // nothing from the bad batch
}

TEST(RuntimePool, ImageCacheDoesNotLeakAcrossVariants) {
  // The same pinned job set on a homogeneous and a mixed-variant 2-device
  // fleet: variants must never alias cache entries (misses double, zero
  // cross-variant hits), while a homogeneous fleet still assembles each
  // image once and shares it.
  auto pinned_jobs = [] {
    Rng rng(13);
    const auto taps = make_buffer(dsp::fir11_lowpass_q15());
    std::vector<std::int32_t> x(128);
    for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.9, 0.9));
    const auto buf = make_buffer(std::move(x));
    std::vector<Job> jobs;
    for (int d = 0; d < 2; ++d) {
      Job job{FirJob{128, taps, buf}, "d" + std::to_string(d)};
      job.pin = d;
      jobs.push_back(std::move(job));
    }
    return jobs;
  };
  auto run_fleet = [&](std::vector<soc::ArchConfig> arch) {
    DevicePool::Config cfg;
    cfg.devices = 2;
    cfg.device_arch = std::move(arch);
    DevicePool pool(cfg);
    for (auto& h : pool.submit_batch(pinned_jobs())) h.get();
    return pool.stats();
  };

  const FleetStats homo = run_fleet({});
  const FleetStats hetero = run_fleet(
      {soc::ArchConfig{}, soc::ArchConfig{.vwr_count = 2}});

  // Homogeneous: device 1 reuses every image device 0 assembled.
  EXPECT_EQ(homo.image_cache.misses, homo.image_cache.entries);
  EXPECT_GT(homo.image_cache.hits, 0u);
  // Heterogeneous: same job set, but every image is assembled once per
  // variant under its own namespace -- no sharing, no aliasing.
  EXPECT_EQ(hetero.image_cache.misses, hetero.image_cache.entries);
  EXPECT_EQ(hetero.image_cache.hits, 0u);
  EXPECT_EQ(hetero.image_cache.misses, 2 * homo.image_cache.misses);
  // Per-variant bookkeeping reaches the fleet stats.
  ASSERT_EQ(hetero.device_arch.size(), 2u);
  EXPECT_EQ(hetero.device_arch[0].vwr_count, 3u);
  EXPECT_EQ(hetero.device_arch[1].vwr_count, 2u);
  ASSERT_EQ(hetero.device_jobs.size(), 2u);
  EXPECT_EQ(hetero.device_jobs[0], 1u);
  EXPECT_EQ(hetero.device_jobs[1], 1u);
}

/// Load-aware scheduling: a batch alternating heavy (cfft-1024) and light
/// (fir-64) jobs is pathological for round-robin on two devices (every
/// heavy job lands on device 0). Shortest-local-clock must (a) leave
/// per-job outputs bit-identical, (b) stay worker-count invariant, and
/// (c) strictly tighten the fleet makespan.
TEST(RuntimeSchedule, ShortestLocalClockTightensSkewedBatch) {
  Rng rng(314);
  const auto taps = make_buffer(dsp::fir11_lowpass_q15());
  std::vector<Job> jobs;
  for (unsigned j = 0; j < 16; ++j) {
    if (j % 2 == 0) {
      std::vector<std::int32_t> x(2 * 1024);
      for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.4, 0.4));
      jobs.push_back(Job{CfftJob{1024, make_buffer(std::move(x))},
                         "heavy#" + std::to_string(j)});
    } else {
      std::vector<std::int32_t> x(64);
      for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.9, 0.9));
      jobs.push_back(Job{FirJob{64, taps, make_buffer(std::move(x))},
                         "light#" + std::to_string(j)});
    }
  }

  auto run_sched = [&jobs](Schedule sched, unsigned workers) {
    DevicePool::Config cfg;
    cfg.devices = 2;
    cfg.workers = workers;
    cfg.schedule = sched;
    DevicePool pool(cfg);
    auto handles = pool.submit_batch(jobs);
    std::vector<JobResult> results;
    for (auto& h : handles) results.push_back(h.get());
    return std::make_pair(std::move(results), pool.stats());
  };

  const auto [rr, rr_stats] = run_sched(Schedule::kRoundRobin, 2);
  const auto [slc, slc_stats] = run_sched(Schedule::kShortestLocalClock, 2);
  const auto [slc1, slc1_stats] = run_sched(Schedule::kShortestLocalClock, 1);

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    SCOPED_TRACE("job " + jobs[j].tag);
    // Round-robin placement is unchanged: seq % devices.
    EXPECT_EQ(rr[j].device, j % 2);
    // Outputs are placement-independent (homogeneous fleet)...
    EXPECT_EQ(slc[j].output, rr[j].output);
    // ...and shortest-local-clock is still worker-count deterministic.
    EXPECT_EQ(slc[j].device, slc1[j].device);
    EXPECT_EQ(slc[j].output, slc1[j].output);
    EXPECT_EQ(slc[j].cost.vwr2a_cycles, slc1[j].cost.vwr2a_cycles);
  }
  // Round-robin put all heavy jobs on device 0; the load-aware policy must
  // have split them, strictly tightening the makespan.
  std::uint64_t slc_heavy_dev1 = 0;
  for (std::size_t j = 0; j < jobs.size(); j += 2) {
    if (slc[j].device == 1) ++slc_heavy_dev1;
  }
  EXPECT_GT(slc_heavy_dev1, 0u);
  EXPECT_LT(slc_stats.fleet_makespan, rr_stats.fleet_makespan);
  EXPECT_EQ(slc_stats.fleet_makespan, slc1_stats.fleet_makespan);
}

/// Online per-family EWMA estimator: measured costs fold into the analytic
/// prior at fleet-quiescent points, deterministically.
TEST(RuntimeSchedule, OnlineEstimatorLearnsMeasuredCosts) {
  Rng rng(271);
  auto fir_job = [&rng] {
    std::vector<std::int32_t> x(256);
    for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.9, 0.9));
    return Job{FirJob{256, make_buffer(dsp::fir11_lowpass_q15()),
                      make_buffer(std::move(x))},
               "fir"};
  };
  const unsigned fam = static_cast<unsigned>(Job{FirJob{}, ""}.work.index());

  DevicePool::Config cfg;
  cfg.schedule = Schedule::kShortestLocalClock;
  DevicePool pool(cfg);
  const Job probe = fir_job();
  const Cycle prior = DevicePool::estimate_cost(probe);
  EXPECT_EQ(pool.estimate(probe), prior);  // nothing measured yet

  std::vector<Job> batch;
  for (int j = 0; j < 8; ++j) batch.push_back(fir_job());
  auto handles = pool.submit_batch(std::move(batch));
  Cycle measured_sum = 0;
  for (auto& h : handles) measured_sum += h.get().cost.total_cycles();
  // Factors are frozen until a quiescent fold.
  EXPECT_EQ(pool.family_factors()[fam], 1.0);
  pool.wait_idle();  // quiescent point: the fold happens here

  const double f = pool.family_factors()[fam];
  const double ratio = static_cast<double>(measured_sum) /
                       static_cast<double>(8 * prior);
  EXPECT_NE(f, 1.0);
  EXPECT_NEAR(f, 1.0 + 0.25 * (ratio - 1.0), 1e-9);  // one EWMA step
  // The learned estimate moved toward the measured per-job cost.
  const double mean = static_cast<double>(measured_sum) / 8.0;
  const double err_prior = std::abs(static_cast<double>(prior) - mean);
  const double err_learned =
      std::abs(static_cast<double>(pool.estimate(probe)) - mean);
  EXPECT_LT(err_learned, err_prior);

  // Off switch: the analytic prior is used unchanged.
  DevicePool::Config off_cfg;
  off_cfg.online_estimator = false;
  DevicePool off(off_cfg);
  off.submit(fir_job()).get();
  off.wait_idle();
  EXPECT_EQ(off.family_factors()[fam], 1.0);
  EXPECT_EQ(off.estimate(probe), prior);
}

/// Estimator folds must not break placement determinism: the same two-batch
/// sequence (barrier between batches) places identically regardless of the
/// worker count, because folds only happen at the barriers.
TEST(RuntimeSchedule, OnlineEstimatorIsWorkerCountInvariant) {
  auto run_workers = [](unsigned workers) {
    DevicePool::Config cfg;
    cfg.devices = 2;
    cfg.workers = workers;
    cfg.schedule = Schedule::kShortestLocalClock;
    DevicePool pool(cfg);
    std::vector<unsigned> devices;
    for (int round = 0; round < 2; ++round) {
      auto handles = pool.submit_batch(make_mixed_jobs(12, 47 + round));
      for (auto& h : handles) devices.push_back(h.get().device);
      pool.wait_idle();  // fold point between rounds
    }
    return std::make_pair(std::move(devices), pool.family_factors());
  };
  const auto [d1, f1] = run_workers(1);
  const auto [d4, f4] = run_workers(4);
  EXPECT_EQ(d1, d4);
  for (unsigned f = 0; f < kJobFamilies; ++f) {
    EXPECT_EQ(f1[f], f4[f]) << "family " << f;
  }
}

TEST(RuntimePool, ImageCacheAssemblesOncePerKernel) {
  const auto jobs = make_mixed_jobs(16, 31);
  DevicePool::Config cfg;
  cfg.devices = 4;
  DevicePool pool(cfg);
  for (auto& h : pool.submit_batch(jobs)) h.get();
  const FleetStats s = pool.stats();
  EXPECT_EQ(s.jobs_completed, jobs.size());
  EXPECT_EQ(s.jobs_failed, 0u);
  // Every image is assembled exactly once fleet-wide...
  EXPECT_EQ(s.image_cache.misses, s.image_cache.entries);
  // ...and the other devices reuse it: FftKernels alone registers 6 images
  // per device, so 4 devices must hit at least 3x6 times.
  EXPECT_GE(s.image_cache.hits, 18u);
  // All four devices did work and fleet time is the slowest device.
  ASSERT_EQ(s.device_cycles.size(), 4u);
  Cycle max_local = 0, sum_local = 0;
  for (Cycle c : s.device_cycles) {
    EXPECT_GT(c, 0u);
    max_local = std::max(max_local, c);
    sum_local += c;
  }
  EXPECT_EQ(s.fleet_makespan, max_local);
  EXPECT_EQ(s.total_device_cycles, sum_local);
  EXPECT_GT(s.jobs_per_sim_second(), 0.0);
}

/// One quantized respiration window for BioTracker jobs.
SharedBuffer make_bio_window(unsigned seed) {
  dsp::RespirationParams p;
  p.breath_hz = 0.2 + 0.05 * (seed % 5);
  Rng sig(seed);
  const auto xd = dsp::respiration(app::kWindow, p, sig);
  std::vector<std::int32_t> xq(app::kWindow);
  for (unsigned i = 0; i < app::kWindow; ++i) xq[i] = fx::to_q16_15(xd[i]);
  return make_buffer(std::move(xq));
}

/// A scripted kill at a job-count boundary rescues the dead device's queue
/// onto healthy devices with bit-identical outputs. One worker + max_batch 1
/// makes the schedule deterministic: the worker drains device 0's four jobs
/// first, the kill fires at completed == 4 while device 1 still holds its
/// whole queue, so exactly those four jobs are rescued.
TEST(RuntimeFaults, ScriptedKillRescuesQueuedJobsBitIdentically) {
  const auto jobs = make_mixed_jobs(16, 91);
  const auto reference = run_all(4, 1, jobs);

  DevicePool::Config cfg;
  cfg.devices = 4;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.faults.events.push_back(FaultEvent{1, 4, 0});
  DevicePool pool(cfg);
  auto handles = pool.submit_batch(jobs);
  for (std::size_t j = 0; j < handles.size(); ++j) {
    const JobResult r = handles[j].get();  // nothing may fail
    EXPECT_EQ(r.output, reference[j].output) << "job " << j;
  }
  pool.wait_idle();
  const FleetStats s = pool.stats();
  EXPECT_EQ(s.jobs_completed, jobs.size());
  EXPECT_EQ(s.jobs_failed, 0u);
  EXPECT_EQ(s.devices_failed, 1u);
  EXPECT_EQ(s.devices_dead, 1u);
  EXPECT_EQ(s.jobs_rescued, 4u);
  ASSERT_EQ(s.device_dead.size(), 4u);
  EXPECT_EQ(s.device_dead[1], 1u);
  EXPECT_TRUE(pool.device_dead(1));
  // The dead device ran nothing after the kill point.
  EXPECT_EQ(s.device_jobs[1], 0u);
}

TEST(RuntimeFaults, PinsFollowFailoverAndReturnAfterRevive) {
  DevicePool::Config cfg;
  cfg.devices = 3;
  DevicePool pool(cfg);
  const auto taps = make_buffer(dsp::fir11_lowpass_q15());
  Rng rng(17);
  std::vector<std::int32_t> x(64);
  for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.9, 0.9));
  const auto buf = make_buffer(std::move(x));
  auto pinned = [&](int pin) {
    Job job{FirJob{64, taps, buf}, "pin"};
    job.pin = pin;
    return job;
  };

  const JobResult before = pool.submit(pinned(1)).get();
  EXPECT_EQ(before.device, 1u);
  pool.wait_idle();

  ASSERT_TRUE(pool.kill_device(1));
  EXPECT_FALSE(pool.kill_device(1));  // already dead
  const JobResult moved = pool.submit(pinned(1)).get();
  EXPECT_NE(moved.device, 1u);
  EXPECT_EQ(moved.output, before.output);  // placement-independent output

  ASSERT_TRUE(pool.revive_device(1));
  EXPECT_FALSE(pool.revive_device(1));  // already alive
  const JobResult back = pool.submit(pinned(1)).get();
  EXPECT_EQ(back.device, 1u);
  EXPECT_EQ(back.output, before.output);

  pool.wait_idle();
  const FleetStats s = pool.stats();
  EXPECT_EQ(s.devices_failed, 1u);
  EXPECT_EQ(s.devices_revived, 1u);
  EXPECT_EQ(s.devices_dead, 0u);
}

TEST(RuntimeFaults, ScriptedReviveRestoresRoundRobinRouting) {
  DevicePool::Config cfg;
  cfg.devices = 2;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.faults.events.push_back(FaultEvent{1, 2, 4});
  DevicePool pool(cfg);
  for (auto& h : pool.submit_batch(make_mixed_jobs(8, 33))) h.get();
  pool.wait_idle();  // completed = 8 >= 4: the revive has fired
  EXPECT_FALSE(pool.device_dead(1));
  const FleetStats s = pool.stats();
  EXPECT_EQ(s.devices_failed, 1u);
  EXPECT_EQ(s.devices_revived, 1u);
  // Round-robin routing uses the revived device again.
  Job job = make_mixed_jobs(2, 34)[1];
  job.pin = -1;
  std::vector<Job> probe(2, job);
  auto handles = pool.submit_batch(std::move(probe));
  bool hit_revived = false;
  for (auto& h : handles) hit_revived |= h.get().device == 1;
  EXPECT_TRUE(hit_revived);
}

TEST(RuntimeFaults, LastDeviceDeadFailsSubmissionCleanly) {
  DevicePool::Config cfg;
  cfg.devices = 1;
  DevicePool pool(cfg);
  ASSERT_TRUE(pool.kill_device(0));
  const auto taps = make_buffer(dsp::fir11_lowpass_q15());
  const auto buf = make_buffer(std::vector<std::int32_t>(64, 1000));
  EXPECT_THROW(pool.submit(Job{FirJob{64, taps, buf}, ""}), HostError);
  // Revive brings the fleet back without a restart.
  ASSERT_TRUE(pool.revive_device(0));
  EXPECT_EQ(pool.submit(Job{FirJob{64, taps, buf}, ""}).get().device, 0u);
}

/// Checkpointed failover: the resident MBioTracker image of a dying device
/// is adopted by its failover target, so post-fault windows deliver
/// bit-identically to an uninterrupted run *and* skip the image re-staging.
TEST(RuntimeFaults, CheckpointCarriesResidentBioAcrossFailover) {
  std::vector<Job> windows;
  for (unsigned w = 0; w < 4; ++w) {
    Job job{BioTrackerJob{app::Target::kCpuVwr2a, make_bio_window(40 + w)},
            "w" + std::to_string(w)};
    job.pin = 0;
    windows.push_back(std::move(job));
  }

  // Reference: all four windows on one undisturbed device.
  std::vector<JobResult> ref;
  {
    DevicePool::Config cfg;
    cfg.devices = 2;
    DevicePool pool(cfg);
    for (auto& h : pool.submit_batch(windows)) ref.push_back(h.get());
    pool.wait_idle();
  }

  // Control: the last two windows served cold (fresh device, init runs).
  std::uint64_t cold_stagings = 0;
  {
    DevicePool::Config cfg;
    cfg.devices = 1;
    DevicePool pool(cfg);
    std::vector<Job> tail(windows.begin() + 2, windows.end());
    for (auto& t : tail) t.pin = 0;
    for (auto& h : pool.submit_batch(tail)) h.get();
    cold_stagings = pool.stats().device_stagings[0];
  }

  // Faulted run: two windows on device 0, kill it, two more windows whose
  // pin follows the failover chain onto device 1, which adopts the
  // checkpoint before running them.
  DevicePool::Config cfg;
  cfg.devices = 2;
  cfg.workers = 1;
  cfg.max_batch = 1;
  DevicePool pool(cfg);
  std::vector<JobResult> got;
  {
    std::vector<Job> head(windows.begin(), windows.begin() + 2);
    for (auto& h : pool.submit_batch(head)) got.push_back(h.get());
  }
  pool.wait_idle();
  ASSERT_TRUE(pool.kill_device(0));
  {
    std::vector<Job> tail(windows.begin() + 2, windows.end());
    for (auto& h : pool.submit_batch(tail)) got.push_back(h.get());
  }
  pool.wait_idle();

  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t w = 0; w < ref.size(); ++w) {
    EXPECT_EQ(got[w].output, ref[w].output) << "window " << w;
  }
  EXPECT_EQ(got[2].device, 1u);  // re-placed
  EXPECT_EQ(got[3].device, 1u);
  const FleetStats s = pool.stats();
  EXPECT_EQ(s.checkpoints_taken, 1u);
  EXPECT_EQ(s.checkpoints_restored, 1u);
  // The adopted image spared device 1 the init staging a cold device pays.
  EXPECT_LT(s.device_stagings[1], cold_stagings);
}

TEST(RuntimeFaults, CheckpointCodecRoundTripsAndRejectsCorruption) {
  DeviceCheckpoint c;
  c.arch = "vwr3-simd32";
  c.sys_base = 32768;
  c.bio_resident = true;
  c.write_gen = 9001;
  c.sram = {1u, 0xfffffffeu, 3u, 0xfffffffcu, 5u};
  SpmRowImage row;
  row.row = 7;
  row.stamp = 41;
  for (unsigned i = 0; i < arch::kVwrWords; ++i) {
    row.data[i] = static_cast<Word>(i * 2654435761u);
  }
  c.spm_rows.push_back(row);

  const std::vector<std::uint8_t> blob = encode_checkpoint(c);
  DeviceCheckpoint d;
  std::string why;
  ASSERT_TRUE(decode_checkpoint(blob, &d, &why)) << why;
  EXPECT_EQ(d.arch, c.arch);
  EXPECT_EQ(d.sys_base, c.sys_base);
  EXPECT_EQ(d.bio_resident, c.bio_resident);
  EXPECT_EQ(d.write_gen, c.write_gen);
  EXPECT_EQ(d.sram, c.sram);
  ASSERT_EQ(d.spm_rows.size(), 1u);
  EXPECT_EQ(d.spm_rows[0].row, row.row);
  EXPECT_EQ(d.spm_rows[0].stamp, row.stamp);
  EXPECT_EQ(d.spm_rows[0].data, row.data);

  // Every single-byte corruption of the payload is caught by the checksum
  // (prologue corruptions trip magic/version/checksum checks instead).
  for (std::size_t i = 0; i < blob.size(); i += 7) {
    std::vector<std::uint8_t> bad = blob;
    bad[i] ^= 0x40;
    EXPECT_FALSE(decode_checkpoint(bad, &d)) << "byte " << i;
  }
  // Truncations and trailing garbage are rejected too.
  std::vector<std::uint8_t> cut(blob.begin(), blob.end() - 3);
  EXPECT_FALSE(decode_checkpoint(cut, &d));
  std::vector<std::uint8_t> fat = blob;
  fat.push_back(0);
  EXPECT_FALSE(decode_checkpoint(fat, &d));
  EXPECT_FALSE(decode_checkpoint({}, &d));
}

TEST(RuntimeFaults, KillAndReviveUnderLoadNeverLosesAJob) {
  DevicePool::Config cfg;
  cfg.devices = 4;
  cfg.workers = 2;
  DevicePool pool(cfg);
  auto handles = pool.submit_batch(make_mixed_jobs(32, 55));
  pool.kill_device(2);  // lands wherever the fleet happens to be
  // A kill on a claimed device settles at its chunk boundary; revive is
  // refused until then.
  while (!pool.revive_device(2)) std::this_thread::yield();
  pool.kill_device(3);
  std::size_t delivered = 0;
  for (auto& h : handles) {
    try {
      h.get();
      ++delivered;
    } catch (const HostError&) {
      // only legal if the whole fleet was dead at rescue time -- it wasn't
      FAIL() << "job failed with healthy devices remaining";
    }
  }
  EXPECT_EQ(delivered, 32u);
  pool.wait_idle();
  const FleetStats s = pool.stats();
  EXPECT_EQ(s.jobs_completed, 32u);
  EXPECT_EQ(s.devices_failed, 2u);
  EXPECT_EQ(s.devices_revived, 1u);
  EXPECT_EQ(s.devices_dead, 1u);
}

/// peek_stats() is legal before any batch boundary (construction-fresh
/// caches) and concurrently with running workers -- the TSan CI job drives
/// this test; see .github/workflows/ci.yml.
TEST(RuntimePool, PeekStatsBeforeFirstBatchAndConcurrentWithWorkers) {
  DevicePool::Config cfg;
  cfg.devices = 2;
  DevicePool pool(cfg);

  const FleetStats fresh = pool.peek_stats();
  EXPECT_EQ(fresh.jobs_completed, 0u);
  EXPECT_EQ(fresh.devices_failed, 0u);
  EXPECT_EQ(fresh.devices_dead, 0u);
  ASSERT_EQ(fresh.device_dead.size(), 2u);
  EXPECT_EQ(fresh.device_dead[0] + fresh.device_dead[1], 0u);
  ASSERT_EQ(fresh.device_cycles.size(), 2u);
  EXPECT_EQ(fresh.fleet_makespan, 0u);

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const FleetStats s = pool.peek_stats();
      ASSERT_EQ(s.device_dead.size(), 2u);
      ASSERT_LE(s.jobs_completed, 24u);
    }
  });
  auto handles = pool.submit_batch(make_mixed_jobs(24, 61));
  pool.kill_device(1);
  for (auto& h : handles) h.get();
  stop.store(true, std::memory_order_relaxed);
  poller.join();
  pool.wait_idle();
  const FleetStats s = pool.stats();
  EXPECT_EQ(s.jobs_completed, 24u);
  EXPECT_EQ(s.devices_failed, 1u);
}

/// Fleet-batched replay: a homogeneous trace-mode fleet serving same-shape
/// FIR jobs groups them into SIMD-over-devices dispatches. A device's
/// first-ever launch is batch-ineligible (it runs scalar inside the
/// group); every later launch goes through the batch replayer.
/// Outputs, per-job cycles and energy must be bit-identical to the scalar
/// trace path (fleet_batch = false) and to an interpret-mode fleet --
/// batching may only change host throughput and telemetry.
TEST(RuntimeBatch, BatchedFirMatchesScalarAndInterpretBitCycleExact) {
  const auto taps_vec = dsp::fir11_lowpass_q15();
  const auto taps = make_buffer(taps_vec);
  auto make_round = [&taps](unsigned count, unsigned seed) {
    Rng rng(seed);
    std::vector<Job> jobs;
    for (unsigned j = 0; j < count; ++j) {
      std::vector<std::int32_t> x(128);
      for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.9, 0.9));
      jobs.push_back(Job{FirJob{128, taps, make_buffer(std::move(x))},
                         "fir#" + std::to_string(j)});
    }
    return jobs;
  };
  const auto round1 = make_round(8, 401);
  const auto round2 = make_round(8, 402);

  struct RunOut {
    std::vector<JobResult> results;
    FleetStats stats;
  };
  auto run_fleet = [&](bool trace, bool batch) {
    DevicePool::Config cfg;
    cfg.devices = 4;
    cfg.workers = 1;  // deterministic group formation
    cfg.fleet_batch = batch;
    if (trace) {
      cfg.device_arch.assign(
          4, soc::ArchConfig{.exec_mode = cgra::ExecMode::kTraceCache});
    }
    DevicePool pool(cfg);
    RunOut out;
    for (const auto* round : {&round1, &round2}) {
      auto handles = pool.submit_batch(*round);
      for (auto& h : handles) out.results.push_back(h.get());
      pool.wait_idle();  // round barrier: round-2 queues see warm traces
    }
    out.stats = pool.stats();
    return out;
  };

  const RunOut batched = run_fleet(true, true);
  const RunOut scalar = run_fleet(true, false);
  const RunOut interp = run_fleet(false, true);  // wrong mode: flag is inert

  ASSERT_EQ(batched.results.size(), 16u);
  for (std::size_t j = 0; j < batched.results.size(); ++j) {
    SCOPED_TRACE("job " + std::to_string(j));
    const auto& round = j < 8 ? round1 : round2;
    const auto& fir = std::get<FirJob>(round[j % 8].work);
    EXPECT_EQ(batched.results[j].output, dsp::fir_fx(*fir.input, taps_vec));
    for (const RunOut* other : {&scalar, &interp}) {
      EXPECT_EQ(batched.results[j].device, other->results[j].device);
      EXPECT_EQ(batched.results[j].output, other->results[j].output);
      EXPECT_EQ(batched.results[j].cost.vwr2a_cycles,
                other->results[j].cost.vwr2a_cycles);
      EXPECT_EQ(batched.results[j].cost.cpu_cycles,
                other->results[j].cost.cpu_cycles);
      EXPECT_EQ(batched.results[j].cost.vwr2a_pj,
                other->results[j].cost.vwr2a_pj);
      EXPECT_EQ(batched.results[j].cost.sys_pj, other->results[j].cost.sys_pj);
      EXPECT_EQ(batched.results[j].launches, other->results[j].launches);
    }
  }

  // Telemetry: both rounds formed 4-wide groups (4 groups of 4). Traces
  // compile statically at first kernel load, so every launch replays (16
  // traced), but batch identity requires a prior launch on the device:
  // the first group's lanes replay scalar, the remaining 12 launches go
  // through the batch replayer.
  EXPECT_EQ(batched.stats.batch_groups, 4u);
  EXPECT_EQ(batched.stats.jobs_batched, 16u);
  EXPECT_EQ(batched.stats.batched_launches, 12u);
  EXPECT_EQ(batched.stats.traced_launches, 16u);
  EXPECT_EQ(batched.stats.traced_rollbacks, 0u);
  EXPECT_GT(batched.stats.replay_decoupled_cycles, 0u);
  // The scalar trace fleet replays the same 16 launches without grouping...
  EXPECT_EQ(scalar.stats.batch_groups, 0u);
  EXPECT_EQ(scalar.stats.jobs_batched, 0u);
  EXPECT_EQ(scalar.stats.batched_launches, 0u);
  EXPECT_EQ(scalar.stats.traced_launches, 16u);
  // ...and an interpret fleet never groups nor traces.
  EXPECT_EQ(interp.stats.batch_groups, 0u);
  EXPECT_EQ(interp.stats.traced_launches, 0u);
  EXPECT_EQ(interp.stats.replay_decoupled_cycles, 0u);
}

/// Partial grouping under mixed queue heads. Round-robin places, per
/// device head: fir-96 / cfft / fir-96 / cfft -- only devices 0 and 2
/// align, so each round forms exactly one 2-wide group; the second heads
/// (fir-96 / cfft / fir-64 / cfft) never group because the FIR shapes
/// differ. FFT and odd-shape FIR jobs run scalar, everything completes,
/// and outputs stay bit-exact.
TEST(RuntimeBatch, MixedHeadsGroupOnlyAlignedFirJobs) {
  const auto taps_vec = dsp::fir11_lowpass_q15();
  const auto taps = make_buffer(taps_vec);
  Rng rng(55);
  std::vector<Job> jobs;
  std::vector<std::vector<std::int32_t>> fir_in;
  for (unsigned j = 0; j < 8; ++j) {
    if (j % 2 == 0) {
      const unsigned n = j == 6 ? 64 : 96;  // device 2's 2nd head misaligns
      std::vector<std::int32_t> x(n);
      for (auto& s : x) s = fx::to_q16_15(rng.next_range(-0.9, 0.9));
      fir_in.push_back(x);
      jobs.push_back(Job{FirJob{n, taps, make_buffer(std::move(x))},
                         "fir#" + std::to_string(j)});
    } else {
      std::vector<std::int32_t> x(2 * 256);
      for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.4, 0.4));
      jobs.push_back(Job{CfftJob{256, make_buffer(std::move(x))},
                         "cfft#" + std::to_string(j)});
    }
  }

  DevicePool::Config cfg;
  cfg.devices = 4;
  cfg.workers = 1;
  cfg.device_arch.assign(
      4, soc::ArchConfig{.exec_mode = cgra::ExecMode::kTraceCache});
  DevicePool pool(cfg);
  // Round 1's group is the paired devices' first launch (scalar lanes);
  // round 2's group replays batched. fir-64 can never join either group.
  for (int round = 0; round < 2; ++round) {
    auto handles = pool.submit_batch(jobs);
    std::size_t j = 0;
    for (auto& h : handles) {
      const JobResult r = h.get();
      if (j % 2 == 0) {
        EXPECT_EQ(r.output, dsp::fir_fx(fir_in[j / 2], taps_vec))
            << "round " << round << " job " << j;
      }
      ++j;
    }
    pool.wait_idle();
  }
  const FleetStats s = pool.stats();
  EXPECT_EQ(s.jobs_completed, 16u);
  EXPECT_EQ(s.jobs_failed, 0u);
  EXPECT_EQ(s.batch_groups, 2u);       // one {dev0, dev2} group per round
  EXPECT_EQ(s.jobs_batched, 4u);
  EXPECT_EQ(s.batched_launches, 2u);   // only round 2's group was warm
  EXPECT_GT(s.traced_launches, s.batched_launches);  // scalar replays too
}

} // namespace
} // namespace vwr2a::runtime
