// Reduction, median, dot-product and delineation kernels against their
// golden models.

#include <gtest/gtest.h>

#include "bus/ahb.hpp"
#include "cgra/vwr2a.hpp"
#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "dsp/reference.hpp"
#include "dsp/signal.hpp"
#include "energy/meter.hpp"
#include "kernels/delineation.hpp"
#include "kernels/host.hpp"
#include "kernels/reduce.hpp"
#include "mem/sram.hpp"

namespace vwr2a::kernels {
namespace {

struct Rig {
  energy::EnergyMeter sys_meter;
  mem::SystemSram sram{sys_meter};
  bus::AhbBus ahb{sram, sys_meter};
  cgra::Vwr2a acc{ahb};
  Host host{acc, sram, nullptr};

  /// Loads values into SPM rows starting at row0 (backdoor; staging costs
  /// are exercised by the FFT/FIR tests and the app).
  void load_rows(unsigned row0, const std::vector<std::int32_t>& v) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      acc.spm().poke(row0 * 128 + static_cast<unsigned>(i),
                     static_cast<Word>(v[i]));
    }
  }
};

std::vector<std::int32_t> random_fx(unsigned n, Rng& rng, double lo = -0.9,
                                    double hi = 0.9) {
  std::vector<std::int32_t> v(n);
  for (auto& x : v) x = fx::to_q16_15(rng.next_range(lo, hi));
  return v;
}

class ReduceRows : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReduceRows, SumMatches) {
  const unsigned nrows = GetParam();
  Rig rig;
  ReduceKernels rk(rig.host);
  Rng rng(nrows);
  const auto v = random_fx(nrows * 128, rng);
  rig.load_rows(4, v);
  std::int64_t expect = 0;
  for (auto x : v) expect += x;
  EXPECT_EQ(rk.sum_rows(4, nrows), static_cast<std::int32_t>(expect));
}

TEST_P(ReduceRows, SumSqMatches) {
  const unsigned nrows = GetParam();
  Rig rig;
  ReduceKernels rk(rig.host);
  Rng rng(nrows + 1);
  const auto v = random_fx(nrows * 128, rng);
  rig.load_rows(4, v);
  std::int32_t expect = 0;
  for (auto x : v) expect += fx::fxp_mul(x, x);
  EXPECT_EQ(rk.sumsq_rows(4, nrows), expect);
}

TEST_P(ReduceRows, CountLeMatches) {
  const unsigned nrows = GetParam();
  Rig rig;
  ReduceKernels rk(rig.host);
  Rng rng(nrows + 2);
  const auto v = random_fx(nrows * 128, rng);
  rig.load_rows(4, v);
  for (int t = 0; t < 5; ++t) {
    const std::int32_t pivot = fx::to_q16_15(rng.next_range(-1.0, 1.0));
    std::int32_t expect = 0;
    for (auto x : v) expect += (x <= pivot) ? 1 : 0;
    EXPECT_EQ(rk.count_le_rows(4, nrows, pivot), expect);
  }
}

TEST_P(ReduceRows, MedianMatchesGolden) {
  const unsigned nrows = GetParam();
  Rig rig;
  ReduceKernels rk(rig.host);
  Rng rng(nrows + 3);
  const auto v = random_fx(nrows * 128, rng);
  rig.load_rows(4, v);
  EXPECT_EQ(rk.median_rows(4, nrows), dsp::median_i32(v));
}

INSTANTIATE_TEST_SUITE_P(Rows, ReduceRows, ::testing::Values(1u, 2u, 4u, 8u));

TEST(MaskedPower, BandSelection) {
  Rig rig;
  ReduceKernels rk(rig.host);
  Rng rng(5);
  const auto v = random_fx(256, rng);
  std::vector<std::int32_t> mask(256);
  for (unsigned i = 0; i < 256; ++i) mask[i] = (i % 3 == 0) ? (1 << 16) : 0;
  rig.load_rows(4, v);
  rig.load_rows(6, mask);
  std::int32_t expect = 0;
  for (unsigned i = 0; i < 256; ++i) {
    expect += fx::fxp_mul(fx::fxp_mul(v[i], v[i]), mask[i]);
  }
  EXPECT_EQ(rk.masked_power(4, 6, 2), expect);
}

TEST(ZeroRows, ClearsPlane) {
  Rig rig;
  ReduceKernels rk(rig.host);
  Rng rng(6);
  rig.load_rows(4, random_fx(512, rng));
  rk.zero_rows(4, 4);
  for (unsigned i = 0; i < 512; ++i) {
    EXPECT_EQ(rig.acc.spm().peek(4 * 128 + i), 0u);
  }
}

TEST(Dot, MatchesGolden) {
  Rig rig;
  ReduceKernels rk(rig.host);
  Rng rng(7);
  for (unsigned nf : {3u, 8u, 12u}) {
    std::vector<std::int32_t> f(nf), w(nf);
    for (auto& x : f) x = fx::to_q16_15(rng.next_range(-1.5, 1.5));
    for (auto& x : w) x = fx::to_coeff(rng.next_range(-1.0, 1.0));
    rig.load_rows(10, f);
    for (unsigned i = 0; i < nf; ++i) {
      rig.sram.poke(100 + i, static_cast<Word>(w[i]));
    }
    std::int32_t expect = 0;
    for (unsigned i = 0; i < nf; ++i) {
      expect = static_cast<std::int32_t>(static_cast<std::uint32_t>(expect) +
                                         static_cast<std::uint32_t>(
                                             fx::fxp_mul(f[i], w[i])));
    }
    EXPECT_EQ(rk.dot(10, 100, nf), expect);
  }
}

class DelinSizes : public ::testing::TestWithParam<unsigned> {};

TEST_P(DelinSizes, MatchesSerialGolden) {
  const unsigned n = GetParam();
  Rig rig;
  DelineationKernels dk(rig.host);
  Rng rng(n);
  // Filtered respiration-like signal (what the app feeds this kernel).
  auto x = dsp::respiration_q16_15(n, dsp::RespirationParams{}, rng);
  x = dsp::fir_fx(x, dsp::fir11_lowpass_q15());
  rig.load_rows(4, x);
  const std::int32_t thr = fx::to_q16_15(0.08);
  const auto got = dk.run(n, 4, thr, x[0], /*sys_scratch=*/200);
  const auto want = dsp::delineate(x, thr);
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DelinSizes, ::testing::Values(128u, 256u, 512u, 1024u));

TEST(Delineation, RandomWalkProperty) {
  Rig rig;
  DelineationKernels dk(rig.host);
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const unsigned n = 256;
    std::vector<std::int32_t> x(n);
    std::int32_t v = 0;
    // Smooth-ish random walk keeps the extrema count under the record cap.
    std::int32_t slope = 0;
    for (auto& s : x) {
      slope += static_cast<std::int32_t>(rng.next_below(401)) - 200;
      slope = std::max(-3000, std::min(3000, slope));
      v += slope;
      s = v;
    }
    const std::int32_t thr = 20000 + static_cast<std::int32_t>(rng.next_below(20000));
    rig.load_rows(4, x);
    const auto got = dk.run(n, 4, thr, x[0], 200);
    EXPECT_EQ(got, dsp::delineate(x, thr)) << "trial " << trial;
  }
}

TEST(Delineation, CyclesInPaperBallpark) {
  // Table 5: delineation of the 512-sample window takes 2723 cycles on
  // VWR2A. Allow a generous band; the shape claim is VWR2A >> CPU.
  Rig rig;
  DelineationKernels dk(rig.host);
  Rng rng(3);
  auto x = dsp::respiration_q16_15(512, dsp::RespirationParams{}, rng);
  x = dsp::fir_fx(x, dsp::fir11_lowpass_q15());
  rig.load_rows(4, x);
  DelineationStats stats;
  dk.run(512, 4, fx::to_q16_15(0.08), x[0], 200, &stats);
  EXPECT_GT(stats.cycles, 1000u);
  EXPECT_LT(stats.cycles, 3 * 2723u);
}

} // namespace
} // namespace vwr2a::kernels
