// Differential tests for the full runtime job catalog: every Job variant on
// randomized inputs must bit-match its dsp::reference golden model (or a
// direct soc::Platform-driven run for the whole-app job), and a pool-served
// job must be indistinguishable -- output, launches, and the full
// cycle/energy snapshot delta -- from the same job run on a standalone
// Device.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "app/mbiotracker.hpp"
#include "artifact/builder.hpp"
#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "dsp/reference.hpp"
#include "dsp/signal.hpp"
#include "runtime/pool.hpp"

namespace vwr2a::runtime {
namespace {

/// Runs one job through a fresh single-device pool -- twice, once per
/// execution engine -- and asserts the trace-cached run is bit-, cycle- and
/// energy-identical to the interpreted one. Every golden test in this suite
/// therefore differentially pins ExecMode::kTraceCache as a side effect.
JobResult run_one(Job job) {
  auto run_mode = [&job](cgra::ExecMode mode) {
    DevicePool::Config cfg;
    cfg.device_arch = {soc::ArchConfig{.exec_mode = mode}};
    DevicePool pool(cfg);
    return pool.submit(job).get();
  };
  JobResult a = run_mode(cgra::ExecMode::kInterpret);
  const JobResult b = run_mode(cgra::ExecMode::kTraceCache);
  EXPECT_EQ(a.output, b.output) << "trace-cache output diverges";
  EXPECT_EQ(a.launches, b.launches);
  EXPECT_EQ(a.cost.cpu_cycles, b.cost.cpu_cycles);
  EXPECT_EQ(a.cost.vwr2a_cycles, b.cost.vwr2a_cycles);
  EXPECT_EQ(a.cost.accel_cycles, b.cost.accel_cycles);
  EXPECT_EQ(a.cost.sys_pj, b.cost.sys_pj);
  EXPECT_EQ(a.cost.vwr2a_pj, b.cost.vwr2a_pj);
  EXPECT_EQ(a.cost.accel_pj, b.cost.accel_pj);
  return a;
}

std::vector<std::int32_t> random_q15(unsigned n, Rng& rng, double lim) {
  std::vector<std::int32_t> x(n);
  for (auto& v : x) v = fx::to_q16_15(rng.next_range(-lim, lim));
  return x;
}

TEST(RuntimeJobs, FirBitExactAgainstGolden) {
  Rng rng(101);
  const auto taps_vec = dsp::fir11_lowpass_q15();
  const auto taps = make_buffer(taps_vec);
  for (unsigned n : {64u, 300u, 512u}) {
    const auto x = random_q15(n, rng, 0.9);
    const JobResult r = run_one(Job{FirJob{n, taps, make_buffer(x)}, "fir"});
    EXPECT_EQ(r.output, dsp::fir_fx(x, taps_vec)) << "n " << n;
    EXPECT_GT(r.cost.vwr2a_cycles, 0u);
  }
}

TEST(RuntimeJobs, CfftBitExactAgainstGolden) {
  Rng rng(102);
  for (unsigned n : {256u, 512u}) {
    std::vector<dsp::CplxFx> x(n);
    std::vector<std::int32_t> interleaved(2 * n);
    for (unsigned i = 0; i < n; ++i) {
      x[i].re = fx::to_q16_15(rng.next_range(-0.4, 0.4));
      x[i].im = fx::to_q16_15(rng.next_range(-0.4, 0.4));
      interleaved[2 * i] = x[i].re;
      interleaved[2 * i + 1] = x[i].im;
    }
    const JobResult r = run_one(Job{CfftJob{n, make_buffer(interleaved)}, ""});
    const auto golden = dsp::pease_fft_fx(x);
    ASSERT_EQ(r.output.size(), 2 * n) << "n " << n;
    for (unsigned k = 0; k < n; ++k) {
      ASSERT_EQ(r.output[2 * k], golden[k].re) << "n " << n << " bin " << k;
      ASSERT_EQ(r.output[2 * k + 1], golden[k].im) << "n " << n << " bin " << k;
    }
  }
}

TEST(RuntimeJobs, RfftBitExactAgainstGolden) {
  Rng rng(103);
  for (unsigned n : {512u, 1024u}) {
    const auto x = random_q15(n, rng, 0.4);
    const JobResult r = run_one(Job{RfftJob{n, make_buffer(x)}, "rfft"});
    const auto golden = dsp::rfft_fx(x);
    ASSERT_EQ(r.output.size(), n + 2) << "n " << n;
    for (unsigned k = 0; k <= n / 2; ++k) {
      ASSERT_EQ(r.output[2 * k], golden[k].re) << "n " << n << " bin " << k;
      ASSERT_EQ(r.output[2 * k + 1], golden[k].im) << "n " << n << " bin " << k;
    }
  }
}

TEST(RuntimeJobs, IfftBitExactAgainstGolden) {
  Rng rng(104);
  for (unsigned n : {256u, 512u}) {
    std::vector<dsp::CplxFx> x(n);
    std::vector<std::int32_t> interleaved(2 * n);
    for (unsigned i = 0; i < n; ++i) {
      x[i].re = fx::to_q16_15(rng.next_range(-0.4, 0.4));
      x[i].im = fx::to_q16_15(rng.next_range(-0.4, 0.4));
      interleaved[2 * i] = x[i].re;
      interleaved[2 * i + 1] = x[i].im;
    }
    const JobResult r = run_one(Job{IfftJob{n, make_buffer(interleaved)}, ""});
    const auto golden = dsp::pease_ifft_fx(x);
    ASSERT_EQ(r.output.size(), 2 * n) << "n " << n;
    for (unsigned k = 0; k < n; ++k) {
      ASSERT_EQ(r.output[2 * k], golden[k].re) << "n " << n << " bin " << k;
      ASSERT_EQ(r.output[2 * k + 1], golden[k].im) << "n " << n << " bin " << k;
    }
  }
}

TEST(RuntimeJobs, ReduceBitExactAgainstGolden) {
  Rng rng(105);
  for (unsigned n : {128u, 512u, 1024u}) {
    const auto x = random_q15(n, rng, 0.95);
    const auto b = make_buffer(x);
    const JobResult rmin = run_one(Job{ReduceJob{ReduceOp::kMin, n, b}, ""});
    const JobResult rmax = run_one(Job{ReduceJob{ReduceOp::kMax, n, b}, ""});
    const JobResult rmean = run_one(Job{ReduceJob{ReduceOp::kMean, n, b}, ""});
    const JobResult renergy =
        run_one(Job{ReduceJob{ReduceOp::kEnergy, n, b}, ""});
    ASSERT_EQ(rmin.output.size(), 1u);
    EXPECT_EQ(rmin.output[0], *std::min_element(x.begin(), x.end())) << n;
    EXPECT_EQ(rmax.output[0], *std::max_element(x.begin(), x.end())) << n;
    EXPECT_EQ(rmean.output[0], dsp::mean_i32(x)) << n;
    EXPECT_EQ(renergy.output[0], dsp::energy_fx(x)) << n;
    EXPECT_EQ(rmin.launches, kernels::kBisectLaunches);
    EXPECT_EQ(rmean.launches, 1u);
  }
}

TEST(RuntimeJobs, DelineationBitExactAgainstGolden) {
  Rng rng(106);
  const std::int32_t thr = fx::to_q16_15(0.08);
  for (unsigned n : {512u, 1024u}) {
    dsp::RespirationParams p;
    p.breath_hz = 0.3;
    const auto x = dsp::respiration_q16_15(n, p, rng);
    const JobResult r =
        run_one(Job{DelineationJob{n, thr, make_buffer(x)}, "delin"});
    const auto golden = dsp::delineate(x, thr);
    ASSERT_EQ(r.output.size(), golden.size()) << "n " << n;
    for (std::size_t i = 0; i < golden.size(); ++i) {
      EXPECT_EQ(r.output[i],
                static_cast<std::int32_t>((golden[i].index << 1) |
                                          (golden[i].is_max ? 1u : 0u)))
          << "n " << n << " record " << i;
    }
    EXPECT_EQ(r.launches, 2u);
  }
}

TEST(RuntimeJobs, BioTrackerMatchesDirectPlatformRun) {
  Rng rng(107);
  for (int trial = 0; trial < 2; ++trial) {
    dsp::RespirationParams p;
    p.breath_hz = (trial == 0) ? 0.18 : 0.55;  // relaxed vs loaded
    Rng sig(rng.next_u64());
    const auto xd = dsp::respiration(app::kWindow, p, sig);
    std::vector<std::int32_t> xq(app::kWindow);
    for (unsigned i = 0; i < app::kWindow; ++i) xq[i] = fx::to_q16_15(xd[i]);

    const JobResult r = run_one(
        Job{BioTrackerJob{app::Target::kCpuVwr2a, make_buffer(xq)}, "bio"});

    // Direct golden run: a fresh platform, the exact window the device saw
    // (quantize -> dequantize round trip).
    std::vector<double> x(app::kWindow);
    for (unsigned i = 0; i < app::kWindow; ++i) x[i] = fx::from_q16_15(xq[i]);
    soc::Platform plat;
    app::MBioTracker tracker(plat);
    tracker.init();
    const app::AppResult golden = tracker.run(app::Target::kCpuVwr2a, x);

    ASSERT_EQ(r.output.size(), 8u);
    EXPECT_EQ(r.output[0], golden.svm_class) << "trial " << trial;
    EXPECT_EQ(r.output[0], (trial == 0) ? -1 : 1) << "trial " << trial;
    EXPECT_EQ(r.output[1], static_cast<std::int32_t>(golden.extrema));
    const auto feats = golden.feat.as_vector();
    for (std::size_t i = 0; i < feats.size(); ++i) {
      EXPECT_EQ(r.output[2 + i], fx::to_q16_15(feats[i])) << "feature " << i;
    }
    EXPECT_GT(r.cost.total_cycles(), 0u);
  }
}

TEST(RuntimeJobs, BioTrackerCpuTargetsAgreeOnClass) {
  Rng rng(108);
  dsp::RespirationParams p;
  p.breath_hz = 0.5;
  const auto xd = dsp::respiration(app::kWindow, p, rng);
  std::vector<std::int32_t> xq(app::kWindow);
  for (unsigned i = 0; i < app::kWindow; ++i) xq[i] = fx::to_q16_15(xd[i]);
  const auto b = make_buffer(xq);

  const JobResult vwr = run_one(Job{BioTrackerJob{app::Target::kCpuVwr2a, b}, ""});
  const JobResult cpu = run_one(Job{BioTrackerJob{app::Target::kCpu, b}, ""});
  const JobResult acc =
      run_one(Job{BioTrackerJob{app::Target::kCpuFftAccel, b}, ""});
  EXPECT_EQ(vwr.output[0], cpu.output[0]);
  EXPECT_EQ(vwr.output[0], acc.output[0]);
  // Only the accelerated target touches the fixed-function FFT engine.
  EXPECT_GT(acc.cost.accel_cycles, 0u);
  EXPECT_EQ(cpu.cost.accel_cycles, 0u);
}

TEST(RuntimeJobs, PipelineBitExactAgainstGolden) {
  Rng rng(111);
  const auto taps_vec = dsp::fir11_lowpass_q15();
  const auto taps = make_buffer(taps_vec);
  for (unsigned n : {512u, 1024u}) {
    const auto x = random_q15(n, rng, 0.4);
    const JobResult r =
        run_one(Job{PipelineJob{n, taps, make_buffer(x)}, "pipe"});
    const auto filt = dsp::fir_fx(x, taps_vec);
    const auto spec = dsp::rfft_fx(filt);
    ASSERT_EQ(r.output.size(), n + 3) << "n " << n;
    EXPECT_EQ(r.output[0], dsp::energy_fx(filt)) << "n " << n;
    for (unsigned k = 0; k <= n / 2; ++k) {
      ASSERT_EQ(r.output[1 + 2 * k], spec[k].re) << "n " << n << " bin " << k;
      ASSERT_EQ(r.output[2 + 2 * k], spec[k].im) << "n " << n << " bin " << k;
    }
    EXPECT_GT(r.cost.vwr2a_cycles, 0u);
  }
}

/// SPM residency: a second BioTracker window on the same device skips the
/// resident-image re-init -- outputs stay bit-identical and the cost drops
/// by *exactly* the re-init delta -- unless an intervening job clobbered
/// the mask rows, in which case the full re-init price returns.
TEST(RuntimeJobs, BioResidencySkipsReinitWithExactDelta) {
  Rng rng(112);
  auto window = [&rng](double hz, unsigned seed) {
    dsp::RespirationParams p;
    p.breath_hz = hz;
    Rng sig(seed);
    const auto xd = dsp::respiration(app::kWindow, p, sig);
    std::vector<std::int32_t> xq(app::kWindow);
    for (unsigned i = 0; i < app::kWindow; ++i) xq[i] = fx::to_q16_15(xd[i]);
    return make_buffer(xq);
  };
  const auto w1 = window(0.2, 41), w2 = window(0.5, 42);

  auto run_two = [&](bool residency, std::optional<Job> middle = {}) {
    DevicePool::Config cfg;
    cfg.device_opts.residency = residency;
    DevicePool pool(cfg);
    std::vector<Job> jobs;
    jobs.push_back(Job{BioTrackerJob{app::Target::kCpuVwr2a, w1}, "bio1"});
    if (middle) jobs.push_back(*middle);
    jobs.push_back(Job{BioTrackerJob{app::Target::kCpuVwr2a, w2}, "bio2"});
    auto handles = pool.submit_batch(std::move(jobs));
    std::vector<JobResult> rs;
    for (auto& h : handles) rs.push_back(h.get());
    return rs;
  };

  // The exact re-init cost, measured on a direct platform with the same
  // history (init + one window, then a second init).
  soc::Platform plat;
  app::MBioTracker tracker(plat);
  tracker.init();
  {
    std::vector<double> x(app::kWindow);
    for (unsigned i = 0; i < app::kWindow; ++i) {
      x[i] = fx::from_q16_15((*w1)[i]);
    }
    tracker.run(app::Target::kCpuVwr2a, x);
  }
  const auto s0 = plat.snapshot();
  tracker.init();
  const auto reinit = soc::Platform::delta(s0, plat.snapshot());
  ASSERT_GT(reinit.total_cycles(), 0u);

  const auto on = run_two(true);
  const auto off = run_two(false);
  ASSERT_EQ(on.size(), 2u);
  // Window 1 always stages; outputs never depend on residency.
  EXPECT_EQ(on[0].output, off[0].output);
  EXPECT_EQ(on[0].cost.cpu_cycles, off[0].cost.cpu_cycles);
  EXPECT_EQ(on[0].cost.vwr2a_cycles, off[0].cost.vwr2a_cycles);
  EXPECT_EQ(on[1].output, off[1].output);
  // Window 2 skipped the re-init: exactly the measured delta, cycle and
  // energy, engine by engine.
  EXPECT_EQ(off[1].cost.cpu_cycles - on[1].cost.cpu_cycles,
            reinit.cpu_cycles);
  EXPECT_EQ(off[1].cost.vwr2a_cycles - on[1].cost.vwr2a_cycles,
            reinit.vwr2a_cycles);
  EXPECT_EQ(off[1].cost.sys_pj - on[1].cost.sys_pj, reinit.sys_pj);
  EXPECT_EQ(off[1].cost.vwr2a_pj - on[1].cost.vwr2a_pj, reinit.vwr2a_pj);

  // A 4096-point reduction stages SPM rows 0..31, clobbering the resp-band
  // mask rows: the next window must pay the re-init again.
  Rng rng2(43);
  std::vector<std::int32_t> big(4096);
  for (auto& v : big) v = fx::to_q16_15(rng2.next_range(-0.9, 0.9));
  Job clobber{ReduceJob{ReduceOp::kEnergy, 4096, make_buffer(big)}, "clobber"};
  const auto clobbered = run_two(true, clobber);
  ASSERT_EQ(clobbered.size(), 3u);
  EXPECT_EQ(clobbered[2].output, on[1].output);
  EXPECT_EQ(clobbered[2].cost.vwr2a_cycles,
            on[1].cost.vwr2a_cycles + reinit.vwr2a_cycles);

  // A small FIR job (rows 0..1) does not touch the mask rows: the skip
  // survives it.
  Rng rng3(44);
  std::vector<std::int32_t> small(128);
  for (auto& v : small) v = fx::to_q16_15(rng3.next_range(-0.9, 0.9));
  Job benign{FirJob{128, make_buffer(dsp::fir11_lowpass_q15()),
                    make_buffer(small)},
             "benign"};
  const auto survived = run_two(true, benign);
  ASSERT_EQ(survived.size(), 3u);
  EXPECT_EQ(survived[2].output, on[1].output);
  EXPECT_EQ(survived[2].cost.vwr2a_cycles, on[1].cost.vwr2a_cycles);
}

/// Cross-job SRAM dedup: jobs of one batch sharing the same SharedBuffer
/// stage the region once per device; distinct (even identical-content)
/// buffers stage every time.
TEST(RuntimeJobs, SharedBufferStagedOncePerDevice) {
  Rng rng(113);
  const auto x = random_q15(512, rng, 0.9);

  auto staging_count = [](const std::vector<Job>& jobs, bool dedup) {
    DevicePool::Config cfg;
    cfg.device_opts.dedup = dedup;
    DevicePool pool(cfg);
    std::vector<std::vector<std::int32_t>> outs;
    for (auto& h : pool.submit_batch(jobs)) outs.push_back(h.get().output);
    return std::make_pair(pool.stats().stagings, std::move(outs));
  };

  // Four energy reductions over ONE shared buffer: staged once.
  const auto shared = make_buffer(x);
  std::vector<Job> same(4, Job{ReduceJob{ReduceOp::kEnergy, 512, shared}, ""});
  const auto [shared_stagings, shared_outs] = staging_count(same, true);
  EXPECT_EQ(shared_stagings, 1u);

  // The same four jobs with per-job buffers (identical content): staged
  // every time -- and identical outputs either way.
  std::vector<Job> distinct;
  for (int j = 0; j < 4; ++j) {
    distinct.push_back(Job{ReduceJob{ReduceOp::kEnergy, 512, make_buffer(x)}, ""});
  }
  const auto [distinct_stagings, distinct_outs] = staging_count(distinct, true);
  EXPECT_EQ(distinct_stagings, 4u);
  EXPECT_EQ(shared_outs, distinct_outs);
  // Dedup off: the shared batch pays full price too.
  const auto [nodedup_stagings, nodedup_outs] = staging_count(same, false);
  EXPECT_EQ(nodedup_stagings, 4u);
  EXPECT_EQ(nodedup_outs, shared_outs);

  // FIR taps: three jobs sharing one taps buffer stage taps once (inputs
  // are distinct, so 3 input stagings + 1 tap staging).
  const auto taps = make_buffer(dsp::fir11_lowpass_q15());
  std::vector<Job> firs;
  for (unsigned j = 0; j < 3; ++j) {
    firs.push_back(
        Job{FirJob{128, taps, make_buffer(random_q15(128, rng, 0.9))}, ""});
  }
  const auto [fir_stagings, fir_outs] = staging_count(firs, true);
  EXPECT_EQ(fir_stagings, 4u);
  const auto [fir_full, fir_full_outs] = staging_count(firs, false);
  EXPECT_EQ(fir_full, 6u);
  EXPECT_EQ(fir_outs, fir_full_outs);
}

/// The pool must be a transparent executor: a job served by a 1-device pool
/// is indistinguishable -- output, launches, and every field of the
/// cycle/energy snapshot delta -- from the same job stream run directly on
/// a standalone Device.
TEST(RuntimeJobs, PoolCostDeltasMatchStandaloneDevice) {
  Rng rng(109);
  const auto taps = make_buffer(dsp::fir11_lowpass_q15());
  dsp::RespirationParams p;
  Rng sig1(77);
  const auto resp = dsp::respiration_q16_15(512, p, sig1);
  std::vector<std::int32_t> window_q(app::kWindow);
  {
    Rng sigw(78);
    const auto xd = dsp::respiration(app::kWindow, p, sigw);
    for (unsigned i = 0; i < app::kWindow; ++i) {
      window_q[i] = fx::to_q16_15(xd[i]);
    }
  }
  std::vector<Job> jobs;
  jobs.push_back(Job{FirJob{256, taps, make_buffer(random_q15(256, rng, 0.9))},
                     "fir"});
  jobs.push_back(
      Job{CfftJob{256, make_buffer(random_q15(512, rng, 0.4))}, "cfft"});
  jobs.push_back(
      Job{RfftJob{512, make_buffer(random_q15(512, rng, 0.4))}, "rfft"});
  jobs.push_back(
      Job{IfftJob{256, make_buffer(random_q15(512, rng, 0.4))}, "ifft"});
  jobs.push_back(Job{ReduceJob{ReduceOp::kEnergy, 512,
                               make_buffer(random_q15(512, rng, 0.9))},
                     "reduce"});
  jobs.push_back(Job{DelineationJob{512, fx::to_q16_15(0.08),
                                    make_buffer(resp)},
                     "delin"});
  jobs.push_back(
      Job{BioTrackerJob{app::Target::kCpuVwr2a, make_buffer(window_q)}, "bio"});

  DevicePool pool;  // one device: jobs run in submission order
  auto handles = pool.submit_batch(jobs);

  isa::ImageCache cache;
  Device dev(0, cache);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    SCOPED_TRACE("job " + jobs[j].tag);
    const JobResult got = handles[j].get();
    const JobResult want = dev.run(jobs[j], j);
    EXPECT_EQ(got.output, want.output);
    EXPECT_EQ(got.launches, want.launches);
    EXPECT_EQ(got.cost.cpu_cycles, want.cost.cpu_cycles);
    EXPECT_EQ(got.cost.vwr2a_cycles, want.cost.vwr2a_cycles);
    EXPECT_EQ(got.cost.accel_cycles, want.cost.accel_cycles);
    EXPECT_EQ(got.cost.sys_pj, want.cost.sys_pj);
    EXPECT_EQ(got.cost.vwr2a_pj, want.cost.vwr2a_pj);
    EXPECT_EQ(got.cost.accel_pj, want.cost.accel_pj);
  }
}

/// Cross-job interactions (SPM residency, staging dedup, resident app
/// images) depend on SPM row stamps; the trace-cached engine renumbers
/// stamp values inside a kernel (decoupled columns) but must preserve every
/// residency predicate -- so a whole job SEQUENCE, not just one job, has to
/// cost exactly the same in both modes.
TEST(RuntimeJobs, TraceCacheSequenceCostsIdentical) {
  Rng rng(114);
  const auto taps = make_buffer(dsp::fir11_lowpass_q15());
  auto window = [](double hz, unsigned seed) {
    dsp::RespirationParams p;
    p.breath_hz = hz;
    Rng sig(seed);
    const auto xd = dsp::respiration(app::kWindow, p, sig);
    std::vector<std::int32_t> xq(app::kWindow);
    for (unsigned i = 0; i < app::kWindow; ++i) xq[i] = fx::to_q16_15(xd[i]);
    return make_buffer(xq);
  };
  std::vector<std::int32_t> big(4096);
  for (auto& v : big) v = fx::to_q16_15(rng.next_range(-0.9, 0.9));
  const auto shared_in = make_buffer(random_q15(512, rng, 0.9));

  // Residency-sensitive sequence: two bio windows (second skips re-init),
  // a mask-clobbering reduction, a third window (pays re-init again), two
  // reductions over one shared buffer (second dedups staging), a pipeline.
  std::vector<Job> jobs;
  jobs.push_back(Job{BioTrackerJob{app::Target::kCpuVwr2a, window(0.2, 51)}, "b1"});
  jobs.push_back(Job{BioTrackerJob{app::Target::kCpuVwr2a, window(0.5, 52)}, "b2"});
  jobs.push_back(Job{ReduceJob{ReduceOp::kEnergy, 4096, make_buffer(big)}, "clob"});
  jobs.push_back(Job{BioTrackerJob{app::Target::kCpuVwr2a, window(0.3, 53)}, "b3"});
  jobs.push_back(Job{ReduceJob{ReduceOp::kMin, 512, shared_in}, "r1"});
  jobs.push_back(Job{ReduceJob{ReduceOp::kMin, 512, shared_in}, "r2"});
  jobs.push_back(Job{PipelineJob{512, taps, make_buffer(random_q15(512, rng, 0.4))},
                     "pipe"});

  auto run_mode = [&jobs](cgra::ExecMode mode) {
    DevicePool::Config cfg;
    cfg.device_arch = {soc::ArchConfig{.exec_mode = mode}};
    DevicePool pool(cfg);
    std::vector<JobResult> rs;
    for (auto& h : pool.submit_batch(jobs)) rs.push_back(h.get());
    return std::make_pair(std::move(rs), pool.stats().stagings);
  };
  const auto [ri, si] = run_mode(cgra::ExecMode::kInterpret);
  const auto [rt, st] = run_mode(cgra::ExecMode::kTraceCache);
  EXPECT_EQ(si, st);  // identical staging/residency decisions
  ASSERT_EQ(ri.size(), rt.size());
  for (std::size_t j = 0; j < ri.size(); ++j) {
    SCOPED_TRACE("job " + ri[j].tag);
    EXPECT_EQ(ri[j].output, rt[j].output);
    EXPECT_EQ(ri[j].launches, rt[j].launches);
    EXPECT_EQ(ri[j].cost.cpu_cycles, rt[j].cost.cpu_cycles);
    EXPECT_EQ(ri[j].cost.vwr2a_cycles, rt[j].cost.vwr2a_cycles);
    EXPECT_EQ(ri[j].cost.sys_pj, rt[j].cost.sys_pj);
    EXPECT_EQ(ri[j].cost.vwr2a_pj, rt[j].cost.vwr2a_pj);
  }
}

/// Architecture variants change cost, not bits: the same catalog must
/// produce identical outputs on every variant, with the expected cost-model
/// direction (2 VWRs slower than 3, SIMD16 cheaper in datapath cycles).
TEST(RuntimeJobs, VariantsBitIdenticalWithModelledCosts) {
  Rng rng(110);
  const auto x = make_buffer(random_q15(512, rng, 0.4));
  auto run_variant = [&x](const soc::ArchConfig& arch) {
    DevicePool::Config cfg;
    cfg.devices = 1;
    cfg.device_arch = {arch};
    DevicePool pool(cfg);
    return pool.submit(Job{CfftJob{256, x}, "cfft"}).get();
  };
  const JobResult base = run_variant(soc::ArchConfig{});
  const JobResult vwr2 = run_variant(soc::ArchConfig{.vwr_count = 2});
  const JobResult vwr4 = run_variant(soc::ArchConfig{.vwr_count = 4});
  const JobResult simd = run_variant(soc::ArchConfig{.simd_width = 16});

  EXPECT_EQ(base.output, vwr2.output);
  EXPECT_EQ(base.output, vwr4.output);
  EXPECT_EQ(base.output, simd.output);
  // Sec 3.2: 2 VWRs pay SPM round trips; 4 VWRs save twiddle reloads.
  EXPECT_GT(vwr2.cost.vwr2a_cycles, base.cost.vwr2a_cycles);
  EXPECT_LT(vwr4.cost.vwr2a_cycles, base.cost.vwr2a_cycles);
  // Sec 5.1.1: dual-lane 16-bit mode halves the elementwise ALU cycles.
  EXPECT_LT(simd.cost.vwr2a_cycles, base.cost.vwr2a_cycles);
  EXPECT_LT(simd.cost.vwr2a_pj, base.cost.vwr2a_pj);
}

/// Artifact hydration is invisible to execution: the full job catalog on a
/// mixed-architecture fleet must be bit-, cycle- and energy-identical
/// whether the kernels come out of a prebuilt artifact (src/artifact/) or
/// are assembled and trace-compiled in-process.
TEST(RuntimeJobs, ArtifactHydratedFleetBitCycleEnergyIdentical) {
  // The fleet's three architecture points, all in trace-cache mode so both
  // sections of the artifact are exercised.
  const std::vector<soc::ArchConfig> fleet = {
      soc::ArchConfig{.exec_mode = cgra::ExecMode::kTraceCache},
      soc::ArchConfig{.vwr_count = 2, .exec_mode = cgra::ExecMode::kTraceCache},
      soc::ArchConfig{.vwr_count = 4, .simd_width = 16,
                      .exec_mode = cgra::ExecMode::kTraceCache}};
  const std::string path =
      testing::TempDir() + "vwr2a_jobs_identity.vwr2art";
  artifact::build_artifact(path, fleet);

  // One job per catalog family, deterministic inputs, round-robin across
  // the mixed fleet (placement is a pure function of submission order, so
  // both pools route identically).
  Rng rng(7177);
  const auto taps = make_buffer(dsp::fir11_lowpass_q15());
  std::vector<Job> jobs;
  jobs.push_back(Job{FirJob{512, taps, make_buffer(random_q15(512, rng, 0.9))},
                     "fir"});
  jobs.push_back(Job{CfftJob{512, make_buffer(random_q15(1024, rng, 0.4))},
                     "cfft"});
  jobs.push_back(Job{RfftJob{512, make_buffer(random_q15(512, rng, 0.4))},
                     "rfft"});
  jobs.push_back(Job{IfftJob{256, make_buffer(random_q15(512, rng, 0.4))},
                     "ifft"});
  for (const ReduceOp op : {ReduceOp::kMin, ReduceOp::kMax, ReduceOp::kMean,
                            ReduceOp::kEnergy}) {
    jobs.push_back(Job{ReduceJob{op, 256,
                                 make_buffer(random_q15(256, rng, 1.5))},
                       "reduce"});
  }
  dsp::RespirationParams resp_params;
  resp_params.breath_hz = 0.3;
  const auto resp = make_buffer(
      dsp::respiration_q16_15(app::kWindow, resp_params, rng));
  jobs.push_back(Job{DelineationJob{512, fx::to_q16_15(0.08), resp}, "delin"});
  jobs.push_back(Job{PipelineJob{512, taps, resp, 0}, "pipeline"});
  jobs.push_back(Job{BioTrackerJob{app::Target::kCpuVwr2a, resp, 0}, "bio"});

  auto run_fleet = [&](const std::string& artifact_path) {
    DevicePool::Config cfg;
    cfg.devices = static_cast<unsigned>(fleet.size());
    cfg.device_arch = fleet;
    cfg.artifact_path = artifact_path;
    cfg.artifact_env = false;
    DevicePool pool(cfg);
    std::vector<JobResult> results;
    for (JobHandle& h : pool.submit_batch(jobs)) results.push_back(h.get());
    return std::make_pair(std::move(results), pool.stats());
  };

  const auto [cold, cold_stats] = run_fleet("");
  const auto [warm, warm_stats] = run_fleet(path);

  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i].output, warm[i].output) << jobs[i].tag;
    EXPECT_EQ(cold[i].device, warm[i].device) << jobs[i].tag;
    EXPECT_EQ(cold[i].launches, warm[i].launches) << jobs[i].tag;
    EXPECT_EQ(cold[i].cost.cpu_cycles, warm[i].cost.cpu_cycles) << jobs[i].tag;
    EXPECT_EQ(cold[i].cost.vwr2a_cycles, warm[i].cost.vwr2a_cycles)
        << jobs[i].tag;
    EXPECT_EQ(cold[i].cost.accel_cycles, warm[i].cost.accel_cycles)
        << jobs[i].tag;
    EXPECT_EQ(cold[i].cost.sys_pj, warm[i].cost.sys_pj) << jobs[i].tag;
    EXPECT_EQ(cold[i].cost.vwr2a_pj, warm[i].cost.vwr2a_pj) << jobs[i].tag;
    EXPECT_EQ(cold[i].cost.accel_pj, warm[i].cost.accel_pj) << jobs[i].tag;
  }
  EXPECT_EQ(cold_stats.fleet_makespan, warm_stats.fleet_makespan);
  EXPECT_EQ(cold_stats.total_device_cycles, warm_stats.total_device_cycles);
  EXPECT_EQ(cold_stats.total_pj, warm_stats.total_pj);
  EXPECT_EQ(cold_stats.stagings, warm_stats.stagings);
  // The warm fleet really was warm: kernels came from the artifact.
  EXPECT_FALSE(cold_stats.artifact_attached);
  EXPECT_TRUE(warm_stats.artifact_attached);
  EXPECT_GT(warm_stats.image_cache.hydrated, 0u);
  EXPECT_GT(warm_stats.trace_cache.hydrated, 0u);
  EXPECT_LT(warm_stats.image_cache.builds, cold_stats.image_cache.builds);
  EXPECT_EQ(warm_stats.artifact_rejects, 0u);
}

} // namespace
} // namespace vwr2a::runtime
