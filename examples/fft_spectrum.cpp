// Spectrum analysis on VWR2A: run the 512-point real FFT kernel on a
// synthetic multi-tone signal and locate the spectral peaks -- the
// frequency-feature path of the paper's biosignal application.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bus/ahb.hpp"
#include "cgra/vwr2a.hpp"
#include "common/fixed_point.hpp"
#include "energy/meter.hpp"
#include "kernels/fft.hpp"
#include "kernels/host.hpp"
#include "mem/sram.hpp"

using namespace vwr2a;

int main() {
  energy::EnergyMeter sys_meter;
  mem::SystemSram sram(sys_meter);
  bus::AhbBus ahb(sram, sys_meter);
  cgra::Vwr2a acc(ahb);
  kernels::Host host(acc, sram, nullptr);
  kernels::FftKernels fft(host);
  fft.prepare(0);

  const unsigned n = 512;
  const unsigned in = kernels::FftKernels::table_words();
  const unsigned out = in + n + 4;
  const unsigned scratch = out + 2 * n + 8;

  // Two tones at bins 13 and 47 plus a DC offset.
  for (unsigned i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / n;
    const double v = 0.10 + 0.40 * std::sin(2 * M_PI * 13 * t) +
                     0.25 * std::sin(2 * M_PI * 47 * t);
    sram.poke(in + i, static_cast<Word>(fx::to_q16_15(v)));
  }

  const auto stats = fft.rfft(n, in, out, scratch);
  std::printf("512-point real FFT on VWR2A: %llu cycles (%.1f us @ 80 MHz), "
              "%u kernel launches, %.3f uJ\n",
              static_cast<unsigned long long>(stats.cycles),
              static_cast<double>(stats.cycles) / 80.0,
              stats.launches, acc.meter().total_uj());

  // Peak picking over the copied-back half spectrum.
  std::printf("%6s %12s\n", "bin", "|X|");
  for (unsigned k = 1; k < n / 2; ++k) {
    const auto re = static_cast<std::int32_t>(sram.peek(out + 2 * k));
    const auto im = static_cast<std::int32_t>(sram.peek(out + 2 * k + 1));
    const double mag = std::hypot(fx::from_q16_15(re), fx::from_q16_15(im));
    if (mag > 20.0) {
      std::printf("%6u %12.1f  <- tone\n", k, mag);
    }
  }
  return 0;
}
