// fleet_top: a `top`-style terminal dashboard for a live fleet, driven
// entirely by v4 push-mode stats. One subscriber connection asks the
// gateway for STATS_PUSH frames every 200 ms (no polling -- the server
// initiates every frame) while 8 producer threads stream biosignals
// through their own connections. Each push repaints:
//   * the fleet scalar lines (jobs, makespan, energy, faults, and the
//     replay tier mix: traced/batched launches + per-tier cycles);
//   * per-device occupancy bars (device-local cycles relative to the
//     busiest device), job counts and the health bitmap;
//   * per-session window rates computed from consecutive pushes, plus the
//     mean end-to-end latency from the v6 WINDOW_RESULT span breakdown
//     (queue + run + deliver host ns, accumulated by the producers'
//     result callbacks) -- per-stage truth, not a push-delta guess.
// The demo renders a fixed number of frames and exits; point the same
// code at listen_tcp/connect_tcp for a real remote dashboard.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "dsp/signal.hpp"
#include "gateway/client.hpp"
#include "gateway/server.hpp"
#include "obs/obs.hpp"

int main() {
  using namespace vwr2a;

  constexpr unsigned kProducers = 8;
  constexpr unsigned kWindowsPerProducer = 12;
  constexpr unsigned kFrames = 12;        // pushes to render before exiting
  constexpr std::uint32_t kCadenceMs = 200;

  gateway::Server::Config cfg;
  cfg.stream.pool.devices = 8;
  cfg.stream.completion_threads = 2;
  for (unsigned d = 0; d < 8; ++d) {
    cfg.stream.pool.device_arch.push_back(
        soc::ArchConfig{.vwr_count = d % 2 == 0 ? 3u : 2u,
                        .exec_mode = cgra::ExecMode::kTraceCache});
  }
  gateway::Server server(cfg);

  // v6 span breakdown: the server stamps queue/run/deliver into every
  // WINDOW_RESULT, which is where the e2e column comes from.
  obs::set_spans(true);

  // Per-session e2e accumulation, fed by the producers' result callbacks
  // (keyed by the *server-side* session id so the dashboard can join it
  // against STATS_PUSH session rows).
  struct E2eAcc {
    std::mutex mu;
    std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
        by_session;  ///< session id -> (summed e2e ns, windows)
  };
  E2eAcc e2e;

  // --- producers: 8 tenants streaming in 256-sample chunks --------------------
  std::atomic<bool> stop_producing{false};
  std::vector<std::thread> producers;
  for (unsigned i = 0; i < kProducers; ++i) {
    producers.emplace_back([&server, &stop_producing, &e2e, i] {
      gateway::Client client(server.connect_loopback());
      gateway::Client::StreamOpts opts;
      opts.tenant = i;
      if (i % 2 == 1) opts.kind = 1;  // alternate feature-pipeline tenants
      const std::uint32_t sid = client.open(
          opts, [&client, &e2e](const gateway::WindowResult& wr) {
            const std::uint64_t session = client.session_of(wr.stream);
            std::lock_guard<std::mutex> lock(e2e.mu);
            auto& [ns, windows] = e2e.by_session[session];
            ns += wr.queue_ns + wr.run_ns + wr.deliver_ns;
            ++windows;
          });
      dsp::RespirationParams params;
      params.breath_hz = 0.14 + 0.05 * i;
      Rng rng(4200 + i);
      const auto signal = dsp::respiration_q16_15(
          kWindowsPerProducer * app::kWindow, params, rng);
      for (std::size_t off = 0;
           off < signal.size() && !stop_producing.load(); off += 256) {
        const std::size_t take =
            std::min<std::size_t>(256, signal.size() - off);
        client.push(sid, std::span<const std::int32_t>(signal)
                             .subspan(off, take));
        // Pace the stream so the dashboard sees it evolve across pushes.
        std::this_thread::sleep_for(std::chrono::milliseconds(40));
      }
      client.flush(sid);
      client.close_stream(sid);
    });
  }

  // --- subscriber: render every STATS_PUSH ------------------------------------
  std::mutex mu;
  std::condition_variable cv;
  unsigned frames = 0;
  gateway::StatsPush prev;
  std::chrono::steady_clock::time_point prev_at;

  gateway::Client dash(server.connect_loopback());
  dash.subscribe_stats(kCadenceMs, [&](const gateway::StatsPush& p) {
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mu);
    const double dt =
        frames > 0
            ? std::chrono::duration<double>(now - prev_at).count()
            : 0.0;

    std::printf("\x1b[2J\x1b[H");  // clear + home (harmless when piped)
    std::printf("fleet_top -- push %llu, cadence %u ms, %u devices\n",
                static_cast<unsigned long long>(p.seq), kCadenceMs,
                p.stats.devices);
    std::printf("jobs %llu done / %llu failed | makespan %llu cy | "
                "%.1f uJ | faults %llu (dead %llu, rescued %llu)\n",
                static_cast<unsigned long long>(p.stats.jobs_completed),
                static_cast<unsigned long long>(p.stats.jobs_failed),
                static_cast<unsigned long long>(p.stats.fleet_makespan),
                p.stats.total_pj * 1e-6,
                static_cast<unsigned long long>(p.stats.devices_failed),
                static_cast<unsigned long long>(p.stats.devices_dead),
                static_cast<unsigned long long>(p.stats.jobs_rescued));
    std::printf("replay %llu traced (%llu batched, %llu rollbacks) | "
                "cy dec %llu / lock %llu / interp %llu | sync %llu\n\n",
                static_cast<unsigned long long>(p.stats.traced_launches),
                static_cast<unsigned long long>(p.stats.batched_launches),
                static_cast<unsigned long long>(p.stats.traced_rollbacks),
                static_cast<unsigned long long>(p.stats.replay_decoupled_cycles),
                static_cast<unsigned long long>(p.stats.replay_lockstep_cycles),
                static_cast<unsigned long long>(
                    p.stats.replay_interpreted_cycles),
                static_cast<unsigned long long>(p.stats.replay_sync_points));

    std::uint64_t busiest = 1;
    for (const auto& d : p.devices) busiest = std::max(busiest, d.cycles);
    for (std::size_t d = 0; d < p.devices.size(); ++d) {
      const auto& dev = p.devices[d];
      const int width =
          static_cast<int>(32 * dev.cycles / busiest);
      std::printf("  dev %2zu %s [%-32.*s] %10llu cy %6llu jobs\n", d,
                  dev.dead != 0 ? "DEAD" : "ok  ", width,
                  "################################",
                  static_cast<unsigned long long>(dev.cycles),
                  static_cast<unsigned long long>(dev.jobs));
    }

    std::printf("\n  %-8s %-6s %10s %10s %9s %9s %8s\n", "session", "dev",
                "submitted", "delivered", "win/s", "e2e ms", "dropped");
    for (const auto& s : p.sessions) {
      // Rate from consecutive pushes: delivered delta over the wall gap.
      double rate = 0.0;
      if (dt > 0) {
        for (const auto& q : prev.sessions) {
          if (q.id != s.id) continue;
          rate = static_cast<double>(s.windows_delivered -
                                     q.windows_delivered) / dt;
          break;
        }
      }
      // Mean e2e (queue + run + deliver) from the v6 span breakdown.
      double e2e_ms = 0.0;
      {
        std::lock_guard<std::mutex> e2e_lock(e2e.mu);
        const auto it = e2e.by_session.find(s.id);
        if (it != e2e.by_session.end() && it->second.second > 0) {
          e2e_ms = static_cast<double>(it->second.first) /
                   static_cast<double>(it->second.second) / 1e6;
        }
      }
      std::printf("  %-8llu %-6u %10llu %10llu %9.1f %9.2f %8llu\n",
                  static_cast<unsigned long long>(s.id), s.device,
                  static_cast<unsigned long long>(s.windows_submitted),
                  static_cast<unsigned long long>(s.windows_delivered),
                  rate, e2e_ms,
                  static_cast<unsigned long long>(s.dropped_samples));
    }
    std::fflush(stdout);

    prev = p;
    prev_at = now;
    ++frames;
    cv.notify_all();
  });

  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(30),
                [&frames] { return frames >= kFrames; });
  }
  dash.unsubscribe_stats();
  stop_producing = true;
  for (auto& t : producers) t.join();

  const gateway::Stats final_stats = dash.stats();
  std::printf("\nrendered %u pushed frames; final: %llu windows delivered, "
              "%llu sessions served\n",
              frames,
              static_cast<unsigned long long>(final_stats.windows_delivered),
              static_cast<unsigned long long>(final_stats.sessions));
  server.stop();
  return frames >= kFrames ? 0 : 1;
}
