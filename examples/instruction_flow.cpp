// Reproduces the paper's Table 1: the instruction flow of the specialized
// slots and RCs for an FFT-stage-like loop, printed as a per-cycle trace of
// the textual assembly -- demonstrating the shared-PC VLIW execution model
// and the textual kernel format (print/parse round trip).

#include <cstdio>

#include "bus/ahb.hpp"
#include "casm/builder.hpp"
#include "casm/factories.hpp"
#include "casm/text.hpp"
#include "cgra/vwr2a.hpp"
#include "energy/meter.hpp"
#include "mem/sram.hpp"

using namespace vwr2a;
using namespace vwr2a::casm;

int main() {
  // A Table-1-like flow: load A and B, loop "VWRC = VWRA + VWRB" with the
  // MXCU walking k and the LCU running the loop, store, exit.
  ProgramBuilder pb;
  pb.line().lsu(lsu_ld_vwr(VwrSel::A, 3)).mxcu(mxcu_set_idx(0)).emit();
  pb.line().lsu(lsu_ld_vwr(VwrSel::B, 4)).lcu(lcu_set(0, 32)).emit();
  Label loop = pb.make_label();
  pb.bind(loop);
  pb.line()
      .rc_all(rc_add(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB))
      .mxcu(mxcu_add_idx(1))
      .lcu(lcu_dbnz(0), loop)
      .emit();
  pb.line().lsu(lsu_st_vwr(VwrSel::C, 5)).emit();
  pb.line().lcu(lcu_exit()).emit();
  const isa::ColumnProgram prog = pb.build();

  // Textual round trip (the parser accepts everything the printer emits).
  const std::string text = to_text(prog);
  std::printf("program (Table-1 style, one line per cycle):\n%s\n", text.c_str());
  const isa::ColumnProgram reparsed = parse_program(text);
  std::printf("print -> parse round trip: %s\n\n",
              reparsed == prog ? "identical" : "MISMATCH");

  // Execute with a per-cycle PC trace.
  energy::EnergyMeter sys_meter;
  mem::SystemSram sram(sys_meter);
  bus::AhbBus ahb(sram, sys_meter);
  cgra::Vwr2a acc(ahb);
  for (unsigned i = 0; i < 256; ++i) acc.spm().poke(3 * 128 + i, i + 1);
  const unsigned kid = acc.register_kernel(make_kernel("table1_flow", 0, prog));
  acc.start_kernel(kid);
  std::printf("PC trace: ");
  unsigned steps = 0;
  while (acc.busy() && steps < 48) {
    std::printf("%u ", acc.column(0).pc());
    acc.step();
    ++steps;
  }
  while (acc.busy()) {
    acc.step();
    ++steps;
  }
  std::printf("... (%u cycles total)\n", steps);
  std::printf("C[0]=%d C[31]=%d (A+B elementwise)\n",
              static_cast<int>(acc.spm().peek(5 * 128)),
              static_cast<int>(acc.spm().peek(5 * 128 + 31)));
  return 0;
}
