// The paper's end-to-end scenario: a wearable monitoring respiration and
// estimating cognitive workload window by window (MBioTracker, Sec 4.4.2),
// here run on all three platform configurations with per-window cost
// reporting -- the application-level comparison behind Table 5.

#include <cstdio>

#include "app/mbiotracker.hpp"
#include "common/rng.hpp"
#include "dsp/signal.hpp"
#include "soc/platform.hpp"

using namespace vwr2a;

int main() {
  Rng rng(2026);
  std::printf("%-8s %-9s | %-22s | %-22s | %-22s\n", "window", "truth",
              "CPU (cyc/uJ/class)", "CPU+ACCEL", "CPU+VWR2A");
  for (int w = 0; w < 6; ++w) {
    const bool loaded = (w % 2) == 1;  // alternate relaxed / loaded breathing
    dsp::RespirationParams p;
    p.breath_hz = loaded ? 0.55 : 0.18;
    const auto x = dsp::respiration(app::kWindow, p, rng);

    soc::Platform p1, p2, p3;
    app::MBioTracker a1(p1), a2(p2), a3(p3);
    a1.init();
    a2.init();
    a3.init();
    const auto r1 = a1.run(app::Target::kCpu, x);
    const auto r2 = a2.run(app::Target::kCpuFftAccel, x);
    const auto r3 = a3.run(app::Target::kCpuVwr2a, x);

    auto fmt = [](const app::AppResult& r) {
      static char buf[3][48];
      static int slot = 0;
      slot = (slot + 1) % 3;
      std::snprintf(buf[slot], sizeof(buf[slot]), "%7llu %6.2f %+d",
                    static_cast<unsigned long long>(r.total.cycles), r.total.uj,
                    r.svm_class);
      return buf[slot];
    };
    std::printf("%-8d %-9s | %-22s | %-22s | %-22s\n", w,
                loaded ? "loaded" : "relaxed", fmt(r1), fmt(r2), fmt(r3));
  }
  std::printf("\nVWR2A executes every step of the pipeline; the CPU only "
              "orchestrates (paper Sec 5.2).\n");
  return 0;
}
