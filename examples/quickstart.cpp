// Quickstart: build a VWR2A kernel with the assembler, run it on the
// cycle-accurate simulator, and read back the result.
//
// The kernel adds two 128-element vectors held in VWRs A and B into VWR C
// (one elementwise pass, all four RCs in parallel), then stores the row to
// the scratchpad. Demonstrates: ProgramBuilder, kernel registration, DMA
// staging, launch, and the energy report.

#include <cstdio>
#include <vector>

#include "bus/ahb.hpp"
#include "casm/builder.hpp"
#include "casm/factories.hpp"
#include "casm/text.hpp"
#include "cgra/vwr2a.hpp"
#include "energy/meter.hpp"
#include "mem/sram.hpp"

using namespace vwr2a;
using namespace vwr2a::casm;

int main() {
  // --- platform: system SRAM + AHB bus + the VWR2A block --------------------
  energy::EnergyMeter sys_meter;
  mem::SystemSram sram(sys_meter);
  bus::AhbBus ahb(sram, sys_meter);
  cgra::Vwr2a acc(ahb);

  // --- the kernel, one VLIW line per cycle -----------------------------------
  ProgramBuilder pb;
  // Load the operand rows (SPM rows 0 and 1), arm the 32-iteration loop.
  pb.line().lsu(lsu_ld_vwr(VwrSel::A, 0)).lcu(lcu_set(0, 32)).emit();
  pb.line().lsu(lsu_ld_vwr(VwrSel::B, 1)).mxcu(mxcu_set_idx(0)).emit();
  // One cycle per element: C[k] = A[k] + B[k] on all four RCs in parallel.
  Label loop = pb.make_label();
  pb.bind(loop);
  pb.line()
      .rc_all(rc_add(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB))
      .mxcu(mxcu_add_idx(1))
      .lcu(lcu_dbnz(0), loop)
      .emit();
  pb.line().lsu(lsu_st_vwr(VwrSel::C, 2)).emit();
  pb.line().lcu(lcu_exit()).emit();

  const unsigned kid = acc.register_kernel(make_kernel("vec_add", 0, pb.build()));
  std::printf("kernel listing:\n%s\n",
              to_text(acc.config_mem().kernel(kid).program[0]).c_str());

  // --- stage inputs, run, read back ------------------------------------------
  for (unsigned i = 0; i < 128; ++i) {
    sram.poke(i, i);            // a[i] = i
    sram.poke(128 + i, 1000 * i);  // b[i] = 1000i
  }
  acc.dma_transfer({dma::Dir::kSysToSpm, 0, 0, 256, 1, 1});
  const Cycle cycles = acc.run_kernel(kid);
  acc.dma_transfer({dma::Dir::kSpmToSys, 512, 2 * 128, 128, 1, 1});

  bool ok = true;
  for (unsigned i = 0; i < 128; ++i) {
    ok = ok && (sram.peek(512 + i) == 1001 * i);
  }
  std::printf("kernel cycles: %llu   result %s\n",
              static_cast<unsigned long long>(cycles), ok ? "OK" : "WRONG");
  const auto rep = energy::make_power_report(acc.meter(), acc.cycles());
  std::printf("%s", energy::format_power_report(rep, "VWR2A power").c_str());
  return ok ? 0 : 1;
}
