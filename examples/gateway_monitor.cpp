// Gateway demo: a wire-protocol serving front-end over a 4-device fleet,
// with three remote patients connected through the in-process loopback
// transport (swap connect_loopback for gateway::connect_tcp against
// listen_tcp to go over real sockets -- same frames, same results). Each
// client opens one stream, pushes its biosignal in small chunks, flushes
// (the barrier guarantees all WINDOW_RESULTs arrived) and closes with the
// final accounting.

#include <cstdio>
#include <span>
#include <vector>

#include "dsp/signal.hpp"
#include "gateway/client.hpp"
#include "gateway/server.hpp"

int main() {
  using namespace vwr2a;

  gateway::Server::Config cfg;
  cfg.stream.pool.devices = 4;
  cfg.stream.pool.device_arch = {
      soc::ArchConfig{.exec_mode = cgra::ExecMode::kTraceCache},
      soc::ArchConfig{.vwr_count = 2, .exec_mode = cgra::ExecMode::kTraceCache},
      soc::ArchConfig{.vwr_count = 4, .exec_mode = cgra::ExecMode::kTraceCache},
      soc::ArchConfig{.simd_width = 16,
                      .exec_mode = cgra::ExecMode::kTraceCache}};
  gateway::Server server(cfg);

  constexpr unsigned kPatients = 3;
  constexpr unsigned kWindows = 4;
  std::printf("gateway: %u patients over loopback, 4-device fleet\n\n",
              kPatients);

  std::vector<std::unique_ptr<gateway::Client>> clients;
  std::vector<std::uint32_t> sids;
  for (unsigned p = 0; p < kPatients; ++p) {
    clients.push_back(
        std::make_unique<gateway::Client>(server.connect_loopback()));
    gateway::Client::StreamOpts opts;
    opts.tenant = p;
    if (p == 2) opts.kind = 1;  // patient 2 runs the feature pipeline
    const unsigned patient = p;
    const bool pipeline = opts.kind == 1;
    sids.push_back(clients.back()->open(
        opts, [patient, pipeline](const gateway::WindowResult& r) {
          if (r.output.size() < 2 || r.index != 0) return;
          if (pipeline) {
            std::printf("  patient %u window %llu on device %u: "
                        "energy %d, %zu spectrum words (%llu cycles)\n",
                        patient, static_cast<unsigned long long>(r.index),
                        r.device, r.output[0], r.output.size() - 1,
                        static_cast<unsigned long long>(r.cycles));
          } else {
            std::printf("  patient %u window %llu on device %u: "
                        "class %+d, %d extrema (%llu cycles)\n",
                        patient, static_cast<unsigned long long>(r.index),
                        r.device, r.output[0], r.output[1],
                        static_cast<unsigned long long>(r.cycles));
          }
        }));
  }

  for (unsigned p = 0; p < kPatients; ++p) {
    dsp::RespirationParams params;
    params.breath_hz = 0.18 + 0.07 * p;
    Rng rng(900 + p);
    const auto signal =
        dsp::respiration_q16_15(kWindows * app::kWindow, params, rng);
    for (std::size_t off = 0; off < signal.size(); off += 400) {
      const std::size_t take = std::min<std::size_t>(400, signal.size() - off);
      clients[p]->push(sids[p],
                       std::span<const std::int32_t>(signal).subspan(off, take));
    }
    const gateway::FlushOk fo = clients[p]->flush(sids[p]);
    std::printf("  patient %u flushed: %llu windows delivered\n", p,
                static_cast<unsigned long long>(fo.windows_delivered));
  }

  const gateway::Stats stats = clients[0]->stats();
  std::printf("\nfleet: %u devices, %llu jobs, makespan %llu cycles, "
              "%.1f uJ\n",
              stats.devices,
              static_cast<unsigned long long>(stats.jobs_completed),
              static_cast<unsigned long long>(stats.fleet_makespan),
              stats.total_pj * 1e-6);

  for (unsigned p = 0; p < kPatients; ++p) {
    const gateway::CloseOk co = clients[p]->close_stream(sids[p]);
    std::printf("patient %u closed: %llu/%llu windows, mean latency %.0f "
                "cycles\n",
                p, static_cast<unsigned long long>(co.windows_delivered),
                static_cast<unsigned long long>(co.windows_submitted),
                co.windows_delivered > 0
                    ? static_cast<double>(co.latency_cycles_total) /
                          static_cast<double>(co.windows_delivered)
                    : 0.0);
  }
  server.stop();
  return 0;
}
