// vwr2a_asm: a small assembler/disassembler CLI for the textual kernel
// format.
//
//   vwr2a_asm asm  <file.vasm>   assemble; print encoded words per slot
//   vwr2a_asm dis  <file.vasm>   assemble then disassemble (normalizes)
//   vwr2a_asm run  <file.vasm>   assemble and execute on a fresh VWR2A
//                                (column 0), print cycles + energy
//
// With no arguments, runs a built-in demo listing.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bus/ahb.hpp"
#include "casm/builder.hpp"
#include "casm/text.hpp"
#include "cgra/vwr2a.hpp"
#include "common/status.hpp"
#include "energy/meter.hpp"
#include "isa/instr.hpp"
#include "mem/sram.hpp"

using namespace vwr2a;

namespace {

const char* kDemo =
    "; demo: accumulate 32 slice words of SPM row 0 into R1 of every RC\n"
    "lcu: seti r0, #32 | lsu: ld.vwr A, [0] | mxcu: seti #0\n"
    "rc*: sadd r1, r1, vwra | mxcu: addi #1 | lcu: dbnz r0, @1\n"
    "rc*: mv vwrc, r1\n"
    "lsu: st.vwr C, [1]\n"
    "lcu: exit\n";

std::string slurp(const char* path) {
  std::ifstream f(path);
  if (!f) throw HostError(std::string("cannot open ") + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

int do_asm(const std::string& text) {
  const isa::ColumnProgram prog = casm::parse_program(text);
  for (unsigned pc = 0; pc < prog.length(); ++pc) {
    std::printf("@%02u:", pc);
    for (unsigned s = 0; s < arch::kSlotsPerColumn; ++s) {
      std::printf(" %08X", prog.word(static_cast<Slot>(s), pc));
    }
    std::printf("\n");
  }
  return 0;
}

int do_dis(const std::string& text) {
  const isa::ColumnProgram prog = casm::parse_program(text);
  std::printf("%s", casm::to_text(prog).c_str());
  return 0;
}

int do_run(const std::string& text) {
  const isa::ColumnProgram prog = casm::parse_program(text);
  energy::EnergyMeter sys_meter;
  mem::SystemSram sram(sys_meter);
  bus::AhbBus ahb(sram, sys_meter);
  cgra::Vwr2a acc(ahb);
  for (unsigned i = 0; i < 128; ++i) acc.spm().poke(i, i);  // demo input
  const unsigned id = acc.register_kernel(casm::make_kernel("cli", 0, prog));
  const Cycle cycles = acc.run_kernel(id);
  std::printf("executed in %llu cycles, %.4f uJ\n",
              static_cast<unsigned long long>(cycles), acc.meter().total_uj());
  std::printf("SRF:");
  for (unsigned i = 0; i < arch::kSrfEntries; ++i) {
    std::printf(" %d", static_cast<int>(acc.column(0).srf().peek(i)));
  }
  std::printf("\nRC R1:");
  for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
    std::printf(" %d", static_cast<int>(acc.column(0).rc_state(r).rf[1]));
  }
  std::printf("\n");
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      std::printf("demo listing:\n%s\n-- assembled --\n", kDemo);
      do_asm(kDemo);
      std::printf("-- executed --\n");
      return do_run(kDemo);
    }
    const std::string mode = argv[1];
    const std::string text = argc > 2 ? slurp(argv[2]) : kDemo;
    if (mode == "asm") return do_asm(text);
    if (mode == "dis") return do_dis(text);
    if (mode == "run") return do_run(text);
    std::fprintf(stderr, "usage: vwr2a_asm [asm|dis|run] [file.vasm]\n");
    return 2;
  } catch (const SimError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
