// Runtime-pool quickstart: a heterogeneous fleet of four simulated VWR2A
// devices -- the paper's design point plus three architecture variants --
// serving the full job catalog through the asynchronous queue. Demonstrates
// submit_batch, per-job cost reporting, pin_to_device routing, and
// fleet-wide statistics.

#include <cstdio>

#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "dsp/signal.hpp"
#include "runtime/pool.hpp"

int main() {
  using namespace vwr2a;

  runtime::DevicePool::Config cfg;
  cfg.devices = 4;  // workers default to one per device
  // Device 0 is the paper's design point; 1..3 are ablation variants.
  cfg.device_arch = {soc::ArchConfig{},
                     soc::ArchConfig{.vwr_count = 2},
                     soc::ArchConfig{.vwr_count = 4},
                     soc::ArchConfig{.simd_width = 16}};
  runtime::DevicePool pool(cfg);

  // Shared immutable inputs: every job references these buffers, no copies.
  Rng rng(7);
  std::vector<std::int32_t> signal(512);
  for (auto& v : signal) v = fx::to_q16_15(rng.next_range(-0.8, 0.8));
  const auto x = runtime::make_buffer(std::move(signal));
  const auto taps = runtime::make_buffer(dsp::fir11_lowpass_q15());

  std::vector<std::int32_t> spectrum_in(2 * 256);
  for (auto& v : spectrum_in) v = fx::to_q16_15(rng.next_range(-0.4, 0.4));
  const auto cx = runtime::make_buffer(std::move(spectrum_in));

  dsp::RespirationParams rp;
  Rng sig(9);
  const auto resp = runtime::make_buffer(dsp::respiration_q16_15(512, rp, sig));

  // A mixed catalog batch: FIR, complex/real/inverse FFTs, reductions,
  // delineation and a whole application window, round-robin across the
  // fleet -- except the last job, pinned to the SIMD16 variant.
  std::vector<runtime::Job> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back({runtime::FirJob{512, taps, x}, "fir512#" + std::to_string(i)});
  }
  for (int i = 0; i < 2; ++i) {
    jobs.push_back({runtime::CfftJob{256, cx}, "cfft256#" + std::to_string(i)});
  }
  jobs.push_back({runtime::RfftJob{512, x}, "rfft512"});
  jobs.push_back({runtime::IfftJob{256, cx}, "ifft256"});
  jobs.push_back({runtime::ReduceJob{runtime::ReduceOp::kEnergy, 512, x},
                  "energy512"});
  jobs.push_back({runtime::ReduceJob{runtime::ReduceOp::kMax, 512, resp},
                  "max512"});
  jobs.push_back({runtime::DelineationJob{512, fx::to_q16_15(0.08), resp},
                  "delin512"});
  jobs.push_back({runtime::BioTrackerJob{app::Target::kCpuVwr2a, resp},
                  "bioapp", /*pin=*/3});
  auto handles = pool.submit_batch(std::move(jobs));

  std::printf("%-10s %-7s %-10s %-12s %-10s\n", "job", "device", "cycles",
              "energy (uJ)", "launches");
  for (auto& h : handles) {
    runtime::JobResult r = h.get();
    std::printf("%-10s %-7u %-10llu %-12.4f %-10u\n", r.tag.c_str(), r.device,
                static_cast<unsigned long long>(r.cost.vwr2a_cycles),
                r.cost.total_uj(), r.launches);
  }

  const runtime::FleetStats s = pool.stats();
  std::printf("\nfleet: %llu jobs on %u devices / %u workers\n",
              static_cast<unsigned long long>(s.jobs_completed),
              pool.num_devices(), pool.num_workers());
  std::printf("  makespan %llu cycles (%.1f us simulated), occupancy %llu cycles\n",
              static_cast<unsigned long long>(s.fleet_makespan),
              s.sim_seconds() * 1e6,
              static_cast<unsigned long long>(s.total_device_cycles));
  std::printf("  energy %.3f uJ, throughput %.0f jobs/s (simulated)\n",
              s.total_uj(), s.jobs_per_sim_second());
  for (std::size_t d = 0; d < s.device_arch.size(); ++d) {
    std::printf("  device %zu [%s]: %llu jobs, %llu cycles, %.3f uJ\n", d,
                s.device_arch[d].name().c_str(),
                static_cast<unsigned long long>(s.device_jobs[d]),
                static_cast<unsigned long long>(s.device_cycles[d]),
                s.device_pj[d] * 1e-6);
  }
  std::printf("  image cache: %llu hits, %llu misses, %zu images\n",
              static_cast<unsigned long long>(s.image_cache.hits),
              static_cast<unsigned long long>(s.image_cache.misses),
              s.image_cache.entries);
  return 0;
}
