// Runtime-pool quickstart: a fleet of four simulated VWR2A devices serving
// a mixed FIR/FFT batch through the asynchronous job queue. Demonstrates
// submit_batch, per-job cost reporting, and fleet-wide statistics.

#include <cstdio>

#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "dsp/signal.hpp"
#include "runtime/pool.hpp"

int main() {
  using namespace vwr2a;

  runtime::DevicePool::Config cfg;
  cfg.devices = 4;  // workers default to one per device
  runtime::DevicePool pool(cfg);

  // Shared immutable inputs: every job references these buffers, no copies.
  Rng rng(7);
  std::vector<std::int32_t> signal(512);
  for (auto& v : signal) v = fx::to_q16_15(rng.next_range(-0.8, 0.8));
  const auto x = runtime::make_buffer(std::move(signal));
  const auto taps = runtime::make_buffer(dsp::fir11_lowpass_q15());

  std::vector<std::int32_t> spectrum_in(2 * 256);
  for (auto& v : spectrum_in) v = fx::to_q16_15(rng.next_range(-0.4, 0.4));
  const auto cx = runtime::make_buffer(std::move(spectrum_in));

  // A mixed batch: 12 FIR-512 jobs and 4 complex FFT-256 jobs.
  std::vector<runtime::Job> jobs;
  for (int i = 0; i < 12; ++i) {
    jobs.push_back({runtime::FirJob{512, taps, x}, "fir512#" + std::to_string(i)});
  }
  for (int i = 0; i < 4; ++i) {
    jobs.push_back({runtime::CfftJob{256, cx}, "cfft256#" + std::to_string(i)});
  }
  auto handles = pool.submit_batch(std::move(jobs));

  std::printf("%-10s %-7s %-10s %-12s %-10s\n", "job", "device", "cycles",
              "energy (uJ)", "launches");
  for (auto& h : handles) {
    runtime::JobResult r = h.get();
    std::printf("%-10s %-7u %-10llu %-12.4f %-10u\n", r.tag.c_str(), r.device,
                static_cast<unsigned long long>(r.cost.vwr2a_cycles),
                r.cost.total_uj(), r.launches);
  }

  const runtime::FleetStats s = pool.stats();
  std::printf("\nfleet: %llu jobs on %u devices / %u workers\n",
              static_cast<unsigned long long>(s.jobs_completed),
              pool.num_devices(), pool.num_workers());
  std::printf("  makespan %llu cycles (%.1f us simulated), occupancy %llu cycles\n",
              static_cast<unsigned long long>(s.fleet_makespan),
              s.sim_seconds() * 1e6,
              static_cast<unsigned long long>(s.total_device_cycles));
  std::printf("  energy %.3f uJ, throughput %.0f jobs/s (simulated)\n",
              s.total_uj(), s.jobs_per_sim_second());
  std::printf("  image cache: %llu hits, %llu misses, %zu images\n",
              static_cast<unsigned long long>(s.image_cache.hits),
              static_cast<unsigned long long>(s.image_cache.misses),
              s.image_cache.entries);
  return 0;
}
