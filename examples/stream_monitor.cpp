// Streaming biosignal monitor: eight simulated patients feed continuous
// respiration streams into a StreamServer over a 4-device heterogeneous
// fleet. Each tenant's windows are classified by the resident MBioTracker
// (relaxed vs loaded breathing); results arrive in order through the sink
// and are checked bit-for-bit against an offline app::MBioTracker run over
// the same samples. Exit status enforces the ordered, reference-identical
// delivery the stream layer promises.
//
//   patient stream --push--> Session ring --window--> BioTrackerJob
//     --soft-pin--> Device (resident app, SPM residency) --sink--> monitor

#include <cstdio>
#include <map>
#include <span>
#include <vector>

#include "app/mbiotracker.hpp"
#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "dsp/signal.hpp"
#include "stream/server.hpp"

using namespace vwr2a;

namespace {

/// Offline golden: a fresh platform running the same window.
std::vector<std::int32_t> offline_window(const std::vector<std::int32_t>& wq) {
  soc::Platform plat;
  app::MBioTracker tracker(plat);
  tracker.init();
  std::vector<double> x(app::kWindow);
  for (unsigned i = 0; i < app::kWindow; ++i) x[i] = fx::from_q16_15(wq[i]);
  const app::AppResult a = tracker.run(app::Target::kCpuVwr2a, x);
  std::vector<std::int32_t> out{a.svm_class,
                                static_cast<std::int32_t>(a.extrema)};
  for (double f : a.feat.as_vector()) out.push_back(fx::to_q16_15(f));
  return out;
}

} // namespace

int main() {
  constexpr unsigned kPatients = 8;
  constexpr unsigned kWindows = 3;  // windows per patient stream

  stream::StreamServer::Config cfg;
  cfg.pool.devices = 4;
  cfg.pool.device_arch = {soc::ArchConfig{},
                          soc::ArchConfig{.vwr_count = 2},
                          soc::ArchConfig{.vwr_count = 4},
                          soc::ArchConfig{.simd_width = 16}};
  stream::StreamServer server(cfg);

  // Patients 0..3 breathe slowly ("relaxed"), 4..7 fast ("loaded").
  std::vector<std::vector<std::int32_t>> streams;
  for (unsigned i = 0; i < kPatients; ++i) {
    dsp::RespirationParams p;
    p.breath_hz = i < 4 ? 0.16 + 0.02 * i : 0.48 + 0.04 * (i - 4);
    Rng rng(7100 + i);
    streams.push_back(
        dsp::respiration_q16_15(kWindows * app::kWindow, p, rng));
  }

  std::map<std::uint64_t, std::vector<stream::WindowResult>> delivered;
  std::vector<stream::Session*> sessions;
  for (unsigned i = 0; i < kPatients; ++i) {
    sessions.push_back(&server.open_session(
        stream::SessionConfig{}, [&delivered](const stream::WindowResult& r) {
          delivered[r.session].push_back(r);
        }));
  }

  // Interleaved ingest, as a telemetry gateway would deliver it.
  for (std::size_t off = 0;; off += 224) {
    bool any = false;
    for (unsigned i = 0; i < kPatients; ++i) {
      if (off >= streams[i].size()) continue;
      const std::size_t take =
          std::min<std::size_t>(224, streams[i].size() - off);
      sessions[i]->push(
          std::span<const std::int32_t>(streams[i]).subspan(off, take));
      any = true;
    }
    if (!any) break;
  }
  server.finish();

  // Verify ordered, reference-bit-identical delivery per patient.
  bool ok = true;
  std::printf("patient  device  windows  classes   mean-latency-cyc\n");
  for (unsigned i = 0; i < kPatients; ++i) {
    const auto& got = delivered[i];
    std::string classes;
    bool match = got.size() == kWindows;
    for (std::size_t w = 0; w < got.size(); ++w) {
      const std::vector<std::int32_t> ref = offline_window(
          {streams[i].begin() + w * app::kWindow,
           streams[i].begin() + (w + 1) * app::kWindow});
      match = match && got[w].index == w && got[w].job.output == ref;
      classes += got[w].job.output[0] > 0 ? '+' : '-';
    }
    const stream::SessionStats st = sessions[i]->stats();
    std::printf("  %-6u %-7u %-8llu %-9s %.0f%s\n", i, st.device,
                static_cast<unsigned long long>(st.windows_delivered),
                classes.c_str(), st.mean_latency_cycles(),
                match ? "" : "   MISMATCH");
    ok = ok && match;
  }

  const stream::ServerStats st = server.stats();
  std::printf("\nfleet: %llu windows, %.0f windows/sim-s, occupancy %.2f, "
              "%.1f uJ\n",
              static_cast<unsigned long long>(st.windows_delivered),
              st.windows_per_sim_second(), st.fleet_occupancy(),
              st.fleet.total_uj());
  std::printf("%s\n", ok ? "all patient streams bit-identical to the offline "
                           "reference"
                         : "MISMATCH against the offline reference");
  return ok ? 0 : 1;
}
